/**
 * @file
 * Unit tests for the stride prefetcher and its L1 integration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/l1_cache.hh"
#include "cache/prefetcher.hh"

namespace vpc
{
namespace
{

PrefetchConfig
enabled()
{
    PrefetchConfig cfg;
    cfg.enable = true;
    return cfg;
}

TEST(StridePrefetcher, DisabledProposesNothing)
{
    PrefetchConfig cfg; // disabled by default (paper baseline)
    StridePrefetcher pf(cfg, 64);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_TRUE(pf.observeMiss(0x1000 + 64 * i).empty());
    EXPECT_EQ(pf.issuedCount(), 0u);
}

TEST(StridePrefetcher, DetectsUnitStrideAfterTraining)
{
    StridePrefetcher pf(enabled(), 64);
    // Allocate (miss 1), learn stride (miss 2), confirm (3, 4)...
    EXPECT_TRUE(pf.observeMiss(0x1000).empty());
    EXPECT_TRUE(pf.observeMiss(0x1040).empty());
    EXPECT_TRUE(pf.observeMiss(0x1080).empty()); // confidence 1
    std::vector<Addr> p = pf.observeMiss(0x10C0); // confidence 2
    ASSERT_EQ(p.size(), 2u); // degree 2
    EXPECT_EQ(p[0], 0x1100u);
    EXPECT_EQ(p[1], 0x1140u);
}

TEST(StridePrefetcher, DetectsNegativeAndLargeStrides)
{
    StridePrefetcher pf(enabled(), 64);
    pf.observeMiss(0x10000);
    pf.observeMiss(0x10000 - 128);
    pf.observeMiss(0x10000 - 256);
    std::vector<Addr> p = pf.observeMiss(0x10000 - 384);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 0x10000u - 512);
}

TEST(StridePrefetcher, RandomMissesNeverConfirm)
{
    StridePrefetcher pf(enabled(), 64);
    // Far-apart random addresses: never within the retraining window.
    Addr addrs[] = {0x0, 0x100000, 0x5000000, 0x20000, 0x9000000,
                    0x444000, 0x7777000, 0x123000};
    unsigned proposals = 0;
    for (Addr a : addrs)
        proposals += pf.observeMiss(a).size();
    EXPECT_EQ(proposals, 0u);
}

TEST(StridePrefetcher, TracksMultipleStreams)
{
    StridePrefetcher pf(enabled(), 64);
    // Interleaved streams A (stride +64) and B (stride +128).
    Addr a = 0x10000, b = 0x80000;
    std::size_t hits = 0;
    for (unsigned i = 0; i < 6; ++i) {
        hits += pf.observeMiss(a).size();
        hits += pf.observeMiss(b).size();
        a += 64;
        b += 128;
    }
    EXPECT_GE(hits, 8u); // both streams confirmed and prefetching
}

class L1PrefetchTest : public ::testing::Test
{
  protected:
    L1PrefetchTest()
        : l1([] {
              L1Config cfg;
              cfg.prefetch.enable = true;
              return cfg;
          }(),
             0, events)
    {
        l1.setMissHandler([this](Addr line, Cycle,
                                 bool prefetch) {
            fetches.push_back({line, prefetch});
        });
    }

    EventQueue events;
    L1DCache l1;
    std::vector<std::pair<Addr, bool>> fetches;
};

TEST_F(L1PrefetchTest, StreamingMissesLaunchPrefetches)
{
    for (unsigned i = 0; i < 6; ++i) {
        l1.load(0x40000 + 64 * i, i, [] {});
        l1.fill(0x40000 + 64 * i, i); // keep MSHRs free
    }
    bool saw_prefetch = false;
    for (const auto &[line, pf] : fetches)
        saw_prefetch |= pf;
    EXPECT_TRUE(saw_prefetch);
    EXPECT_GT(l1.prefetchesIssued(), 0u);
}

TEST_F(L1PrefetchTest, PrefetchFillsInstallWithoutWaiters)
{
    for (unsigned i = 0; i < 6; ++i) {
        l1.load(0x40000 + 64 * i, i, [] {});
        l1.fill(0x40000 + 64 * i, i);
    }
    // Complete the still-outstanding prefetch fetches (some may have
    // been overtaken by the demand loop's own fills); nothing should
    // fire or panic.
    for (const auto &[line, pf] : fetches) {
        if (pf && l1.mshrPending(line))
            l1.fill(line, 100);
    }
    EXPECT_EQ(l1.mshrsInUse(), 0u);
}

TEST_F(L1PrefetchTest, DemandMergesIntoPrefetchInFlight)
{
    for (unsigned i = 0; i < 6; ++i) {
        l1.load(0x40000 + 64 * i, i, [] {});
        l1.fill(0x40000 + 64 * i, i);
    }
    // Find a still-outstanding prefetch and demand-load its line.
    Addr pf_line = 0;
    for (const auto &[line, pf] : fetches) {
        if (pf && l1.mshrPending(line))
            pf_line = line;
    }
    ASSERT_NE(pf_line, 0u);
    bool done = false;
    auto res = l1.load(pf_line, 50, [&] { done = true; });
    EXPECT_EQ(res, L1DCache::LoadResult::Miss); // merged, not refetched
    EXPECT_GT(l1.prefetchesLateUseful(), 0u);
    l1.fill(pf_line, 60);
    EXPECT_TRUE(done);
}

TEST_F(L1PrefetchTest, PrefetchNeverStealsLastMshr)
{
    L1Config cfg;
    // Fill all but one MSHR with demand misses to scattered lines.
    for (unsigned i = 0; i + 1 < cfg.mshrs; ++i)
        l1.load(0x900000 + 0x1000 * i, 0, [] {});
    std::size_t before = fetches.size();
    // A strided pattern would prefetch, but only one MSHR remains and
    // the demand miss takes it; the prefetch finds none free.
    l1.load(0xA00000, 1, [] {});
    EXPECT_EQ(l1.mshrsInUse(), cfg.mshrs);
    EXPECT_EQ(fetches.size(), before + 1);
}

} // namespace
} // namespace vpc
