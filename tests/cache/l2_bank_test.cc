/**
 * @file
 * Integration tests for one L2 bank: pipeline timing, store path,
 * misses/fills, and arbitration policy effects.
 */

#include <gtest/gtest.h>

#include <optional>

#include "cache/l2_bank.hh"
#include "sim/simulator.hh"

namespace vpc
{
namespace
{

class L2BankTest : public ::testing::Test
{
  protected:
    explicit L2BankTest(ArbiterPolicy policy = ArbiterPolicy::Fcfs)
    {
        cfg.numProcessors = 2;
        cfg.arbiterPolicy = policy;
        cfg.validate();
        mc = std::make_unique<MemoryController>(cfg.mem, 2, 64,
                                                sim.events());
        bank = std::make_unique<L2Bank>(cfg, 0, 1, 2, sim.events(),
                                        *mc);
        bank->setResponseHandler([this](ThreadId t, Addr la) {
            responses.push_back({t, la, sim.now()});
        });
        ticker.bank = bank.get();
        sim.addTicking(&ticker);
        sim.addTicking(mc.get());
    }

    struct BankTicker : Ticking
    {
        L2Bank *bank = nullptr;
        void tick(Cycle now) override { bank->tick(now); }
    };

    struct Response
    {
        ThreadId thread;
        Addr lineAddr;
        Cycle at;
    };

    /** Run until the bank quiesces (or the limit hits). */
    void
    runToIdle(Cycle limit = 10'000)
    {
        Cycle end = sim.now() + limit;
        while (sim.now() < end) {
            sim.step();
            if (bank->quiesced())
                return;
        }
    }

    /** Load a line and drop the fill so later accesses hit. */
    void
    warmLine(ThreadId t, Addr line)
    {
        bank->loadArrive(t, line, sim.now());
        runToIdle();
        responses.clear();
    }

    void
    sendStore(ThreadId t, Addr line)
    {
        ASSERT_TRUE(bank->tryReserveStore(t));
        bank->storeArrive(t, line, sim.now());
    }

    SystemConfig cfg;
    Simulator sim;
    std::unique_ptr<MemoryController> mc;
    std::unique_ptr<L2Bank> bank;
    BankTicker ticker;
    std::vector<Response> responses;
};

TEST_F(L2BankTest, LoadMissFetchesFromMemoryAndResponds)
{
    bank->loadArrive(0, 0x4000, 0);
    runToIdle();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].thread, 0u);
    EXPECT_EQ(responses[0].lineAddr, 0x4000u);
    EXPECT_EQ(bank->threadMissCount(0), 1u);
    EXPECT_EQ(mc->readCount(0), 1u);
}

TEST_F(L2BankTest, LoadHitPipelineTiming)
{
    warmLine(0, 0x4000);
    Cycle start = sim.now();
    // Align to an even (L2) cycle for exact timing.
    if (start & 1) {
        sim.step();
        start = sim.now();
    }
    bank->loadArrive(0, 0x4000, start);
    runToIdle();
    ASSERT_EQ(responses.size(), 1u);
    // tag(4) + data(8) + first bus beat(2) = 14 cycles at the bank.
    EXPECT_EQ(responses[0].at - start, 14u);
    EXPECT_EQ(bank->threadMissCount(0), 1u); // only the warming miss
}

TEST_F(L2BankTest, StoresGatherAndRetireAtHighWater)
{
    // Five distinct lines stay buffered (below the retire-at-6 mark).
    for (unsigned i = 0; i < 5; ++i)
        sendStore(0, 0x100000 + 0x40 * i);
    sim.run(200);
    EXPECT_EQ(bank->writeCount(0), 0u);
    EXPECT_EQ(bank->sgb(0).occupancy(), 5u);
    // The sixth line trips the high-water mark and draining begins.
    sendStore(0, 0x100000 + 0x40 * 5);
    runToIdle(50'000);
    EXPECT_GT(bank->writeCount(0), 0u);
}

TEST_F(L2BankTest, LoadConflictFlushesBufferedStore)
{
    warmLine(0, 0x8000);
    sendStore(0, 0x8000);
    sim.run(50);
    EXPECT_EQ(bank->writeCount(0), 0u); // gathered, idle
    // A load to the same line forces the store (partial flush) ahead
    // of it.
    bank->loadArrive(0, 0x8000, sim.now());
    runToIdle(100'000);
    EXPECT_EQ(bank->writeCount(0), 1u);
    ASSERT_EQ(responses.size(), 1u);
}

TEST_F(L2BankTest, WriteAllocateOnStoreMiss)
{
    // Six distinct lines trip the retire-at-6 policy; the FIFO head
    // (0x20000) is drained first and write-allocates.
    sendStore(0, 0x20000);
    for (unsigned i = 1; i < 6; ++i)
        sendStore(0, 0x20000 + 0x1000 * i);
    runToIdle(100'000);
    EXPECT_GE(bank->threadMissCount(0), 1u);
    EXPECT_GE(mc->readCount(0), 1u);
    std::uint64_t misses = bank->threadMissCount(0);
    // A later load to the allocated line hits (no new miss).
    responses.clear();
    bank->loadArrive(0, 0x20000, sim.now());
    runToIdle();
    EXPECT_EQ(bank->threadMissCount(0), misses);
    ASSERT_EQ(responses.size(), 1u);
}

TEST_F(L2BankTest, DirtyEvictionWritesBack)
{
    // Make a line dirty, then displace it with enough conflicting
    // fills to exhaust the set's ways (32-way: 33 distinct lines in
    // one set).
    Addr set_stride = cfg.l2.setsPerBank(1) * cfg.l2.lineBytes;
    sendStore(0, 0x0);
    for (unsigned i = 0; i < 6; ++i)
        sendStore(0, 0x40 * (1 + i)); // trip high water, drain all
    runToIdle(100'000);
    for (unsigned i = 1; i <= cfg.l2.ways; ++i) {
        bank->loadArrive(0, set_stride * i, sim.now());
        runToIdle(100'000);
    }
    EXPECT_GE(mc->writeCount(0), 1u); // dirty line written back
}

TEST_F(L2BankTest, ResourceUtilizationAccounted)
{
    warmLine(0, 0x4000);
    auto tag_before = bank->tagArray().util().busyCycles();
    bank->loadArrive(0, 0x4000, sim.now());
    runToIdle();
    EXPECT_EQ(bank->tagArray().util().busyCycles() - tag_before, 4u);
}

TEST_F(L2BankTest, QuiescedReflectsState)
{
    EXPECT_TRUE(bank->quiesced());
    bank->loadArrive(0, 0x4000, 0);
    EXPECT_FALSE(bank->quiesced());
    runToIdle();
    EXPECT_TRUE(bank->quiesced());
}

TEST_F(L2BankTest, PerThreadStateMachinesAreIsolated)
{
    // Thread 0 floods its 8 state machines with misses; thread 1's
    // single load must still be admitted promptly.
    for (unsigned i = 0; i < 12; ++i)
        bank->loadArrive(0, 0x100000 + 0x40 * i, 0);
    bank->loadArrive(1, 0x4000, 0);
    runToIdle(200'000);
    std::optional<Cycle> t1_at;
    for (const Response &r : responses) {
        if (r.thread == 1)
            t1_at = r.at;
    }
    ASSERT_TRUE(t1_at.has_value());
}

class L2BankRowTest : public L2BankTest
{
  protected:
    L2BankRowTest() : L2BankTest(ArbiterPolicy::RowFcfs) {}
};

TEST_F(L2BankRowTest, ContinuousLoadsStarveStores)
{
    // Warm thread 0's load lines so they hit (continuous read stream)
    // and thread 1's store lines so its stores are L2 hits that need
    // the 16-cycle data-array read-modify-write (cold stores would
    // miss, and their memory *fills* are read-class accesses that RoW
    // happily services).
    for (unsigned i = 0; i < 64; ++i)
        warmLine(0, 0x40000 + 0x40 * i);
    for (unsigned i = 0; i < 64; ++i)
        warmLine(1, 0x200000 + 0x40 * i);

    // Build a read backlog first: loads arrive at twice the data
    // array's service rate, so once the backlog exists a read is
    // always pending whenever the array frees.
    unsigned next = 0;
    auto pump_loads = [&](unsigned rounds) {
        for (unsigned round = 0; round < rounds; ++round) {
            if (round % 2 == 0) {
                bank->loadArrive(0, 0x40000 + 0x40 * (next++ % 64),
                                 sim.now());
            }
            sim.step();
        }
    };
    pump_loads(400);

    // Thread 1 continuously pushes stores (its SGB stays at the
    // high-water mark, always wanting to retire).  Under RoW the read
    // stream starves them: over 4000 cycles a fair half share of the
    // data array would service ~125 stores (16 cycles each); the
    // store thread must get almost none of that.
    unsigned store_line = 0;
    auto pump_both = [&](unsigned rounds) {
        for (unsigned round = 0; round < rounds; ++round) {
            if (bank->tryReserveStore(1)) {
                bank->storeArrive(1,
                                  0x200000 + 0x40 * (store_line++ %
                                                     64),
                                  sim.now());
            }
            if (round % 2 == 0) {
                bank->loadArrive(0, 0x40000 + 0x40 * (next++ % 64),
                                 sim.now());
            }
            sim.step();
        }
    };
    std::uint64_t grants_before =
        bank->dataArray().arbiter().grantCount(1);
    pump_both(4000);
    EXPECT_LE(bank->dataArray().arbiter().grantCount(1) -
                  grants_before,
              6u);
    // The stores are backlogged, not absent.
    EXPECT_GT(bank->dataArray().arbiter().pendingCount(1) +
                  bank->tagArray().arbiter().pendingCount(1) +
                  bank->sgb(1).occupancy(),
              0u);
}

} // namespace
} // namespace vpc
