/**
 * @file
 * Unit tests for the VPC controller's software-visible control
 * registers (Section 4).
 */

#include <gtest/gtest.h>

#include "arbiter/vpc_arbiter.hh"
#include "cache/replacement.hh"
#include "cache/vpc_controller.hh"
#include "sim/simulator.hh"

namespace vpc
{
namespace
{

class VpcControllerTest : public ::testing::Test
{
  protected:
    VpcControllerTest()
    {
        cfg.numProcessors = 4;
        cfg.arbiterPolicy = ArbiterPolicy::Vpc;
        // Start with nothing allocated: the controller owns shares.
        cfg.allowUnallocatedShares = true;
        cfg.shares.assign(4, QosShare{0.0, 0.0});
        cfg.validate();
        mc = std::make_unique<MemoryController>(cfg.mem, 4, 64,
                                                sim.events());
        l2 = std::make_unique<L2Cache>(cfg, sim.events(), *mc);
        ctrl = std::make_unique<VpcController>(*l2, 4);
    }

    SystemConfig cfg;
    Simulator sim;
    std::unique_ptr<MemoryController> mc;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<VpcController> ctrl;
};

TEST_F(VpcControllerTest, RegistersStartZeroed)
{
    for (ThreadId t = 0; t < 4; ++t) {
        const VpcConfigRegister &r = ctrl->readRegister(t);
        EXPECT_DOUBLE_EQ(r.phiTag, 0.0);
        EXPECT_DOUBLE_EQ(r.beta, 0.0);
    }
    EXPECT_DOUBLE_EQ(ctrl->unallocatedTag(), 1.0);
    EXPECT_DOUBLE_EQ(ctrl->unallocatedCapacity(), 1.0);
}

TEST_F(VpcControllerTest, WriteAppliesToAllBanksArbiters)
{
    ASSERT_TRUE(ctrl->writeRegister(
        1, VpcConfigRegister::uniform(0.5, 0.25)));
    for (unsigned b = 0; b < l2->numBanks(); ++b) {
        // The arbiters are VPC arbiters; their shares must reflect
        // the register write.
        auto &tag = dynamic_cast<VpcArbiter &>(
            l2->bank(b).tagArray().arbiter());
        auto &data = dynamic_cast<VpcArbiter &>(
            l2->bank(b).dataArray().arbiter());
        EXPECT_DOUBLE_EQ(tag.share(1), 0.5);
        EXPECT_DOUBLE_EQ(data.share(1), 0.5);
    }
}

TEST_F(VpcControllerTest, PerResourceSharesAreIndependent)
{
    VpcConfigRegister reg;
    reg.phiTag = 0.2;
    reg.phiData = 0.6;
    reg.phiBus = 0.4;
    reg.beta = 0.1;
    ASSERT_TRUE(ctrl->writeRegister(0, reg));
    auto &tag = dynamic_cast<VpcArbiter &>(
        l2->bank(0).tagArray().arbiter());
    auto &data = dynamic_cast<VpcArbiter &>(
        l2->bank(0).dataArray().arbiter());
    auto &bus = dynamic_cast<VpcArbiter &>(
        l2->bank(0).dataBus().arbiter());
    EXPECT_DOUBLE_EQ(tag.share(0), 0.2);
    EXPECT_DOUBLE_EQ(data.share(0), 0.6);
    EXPECT_DOUBLE_EQ(bus.share(0), 0.4);
    EXPECT_DOUBLE_EQ(ctrl->unallocatedData(), 0.4);
}

TEST_F(VpcControllerTest, RejectsOverAllocation)
{
    ASSERT_TRUE(ctrl->writeRegister(
        0, VpcConfigRegister::uniform(0.7, 0.5)));
    // 0.7 + 0.4 > 1: rejected, register unchanged.
    EXPECT_FALSE(ctrl->writeRegister(
        1, VpcConfigRegister::uniform(0.4, 0.2)));
    EXPECT_DOUBLE_EQ(ctrl->readRegister(1).phiTag, 0.0);
    // 0.7 + 0.3 = 1: accepted.
    EXPECT_TRUE(ctrl->writeRegister(
        1, VpcConfigRegister::uniform(0.3, 0.2)));
}

TEST_F(VpcControllerTest, RewriteReplacesOldAllocation)
{
    ASSERT_TRUE(ctrl->writeRegister(
        0, VpcConfigRegister::uniform(0.9, 0.9)));
    // Shrinking thread 0 frees room for thread 1.
    ASSERT_TRUE(ctrl->writeRegister(
        0, VpcConfigRegister::uniform(0.25, 0.25)));
    EXPECT_TRUE(ctrl->writeRegister(
        1, VpcConfigRegister::uniform(0.75, 0.75)));
    EXPECT_NEAR(ctrl->unallocatedTag(), 0.0, 1e-12);
}

TEST_F(VpcControllerTest, RejectsOutOfRangeFields)
{
    VpcConfigRegister reg;
    reg.phiTag = -0.1;
    EXPECT_FALSE(ctrl->writeRegister(0, reg));
    reg.phiTag = 0.5;
    reg.beta = 1.5;
    EXPECT_FALSE(ctrl->writeRegister(0, reg));
}

TEST_F(VpcControllerTest, CapacityShareReachesTheCapacityManager)
{
    ASSERT_TRUE(ctrl->writeRegister(
        2, VpcConfigRegister::uniform(0.5, 0.5)));
    auto *mgr = dynamic_cast<const VpcCapacityManager *>(
        &l2->bank(0).array().policy());
    ASSERT_NE(mgr, nullptr);
    EXPECT_EQ(mgr->quota(2), 16u); // 0.5 * 32 ways
}

} // namespace
} // namespace vpc
