/**
 * @file
 * Randomized-trace golden differential for the structure-of-arrays
 * CacheArray (DESIGN.md 5e).
 *
 * The SoA rebuild keeps the virtual ReplacementPolicy interface as an
 * oracle while the fill path dispatches on PolicyKind and computes
 * victims with bitmask arithmetic.  This test drives a CacheArray and
 * an array-of-structures reference model (which consults the virtual
 * policy for every victim) through the same randomized trace of
 * lookups, fills, dirty-marks and invalidations, asserting at every
 * step:
 *
 *  - identical victim ways (via the setVictimAudit tap, replayed
 *    through ReplacementPolicy::victim on the pre-overwrite lines);
 *  - identical evictions (valid/dirty/address/owner);
 *  - identical per-thread occupancy.
 *
 * Covered policies: global LRU, the VPC capacity manager (including
 * the multi-over-quota fairness refinement), the flexible whole-cache
 * occupancy manager and a PolicyKind::Other fallback policy.
 *
 * Every differential runs twice — once with vec::forceScalar set (the
 * scalar reference bodies in sim/vec.hh) and once on the compiled
 * vector path — so the SIMD tag-match and victim scans are proven
 * decision-identical to the scalar specification at runtime, not just
 * by build configuration.  Odd-way geometries (3, 5, 6 ways: below,
 * just above and 1.5x the 4-lane vector width) cover the masked-tail
 * and padding edge cases of the vectorized scans.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/replacement.hh"
#include "sim/random.hh"
#include "sim/vec.hh"

namespace vpc
{
namespace
{

/**
 * Array-of-structures reference cache: the pre-SoA CacheArray
 * semantics, with every victim chosen by the virtual policy oracle.
 */
class RefArray
{
  public:
    RefArray(std::uint64_t sets, unsigned ways, unsigned line_bytes,
             std::unique_ptr<ReplacementPolicy> policy,
             unsigned index_shift = 0)
        : sets_(sets), ways_(ways), lineBytes_(line_bytes),
          indexShift_(index_shift), policy_(std::move(policy)),
          lines_(sets * ways)
    {
    }

    bool
    lookup(Addr addr, bool touch, ThreadId t)
    {
        (void)t;
        std::uint64_t s = setIndex(addr);
        Addr tag = tagOf(addr);
        for (unsigned w = 0; w < ways_; ++w) {
            CacheLine &l = line(s, w);
            if (l.valid && l.tag == tag) {
                if (touch)
                    l.lastUse = ++useClock_;
                return true;
            }
        }
        return false;
    }

    /** Insert; @p victim_out receives the chosen way. */
    Eviction
    insert(Addr addr, ThreadId t, bool dirty, unsigned &victim_out)
    {
        std::uint64_t s = setIndex(addr);
        std::span<const CacheLine> set{&lines_[s * ways_], ways_};
        unsigned w = policy_->victim(set, t);
        victim_out = w;
        CacheLine &l = line(s, w);
        Eviction ev;
        if (l.valid) {
            ev.valid = true;
            ev.dirty = l.dirty;
            ev.owner = l.owner;
            Addr low = (addr >> lineShift())
                & ((Addr{1} << indexShift_) - 1);
            ev.lineAddr = (((l.tag * sets_ + s) << indexShift_) | low)
                * lineBytes_;
            policy_->onEvict(l.owner);
        }
        l.tag = tagOf(addr);
        l.valid = true;
        l.dirty = dirty;
        l.owner = t;
        l.lastUse = ++useClock_;
        policy_->onInsert(t);
        return ev;
    }

    bool
    markDirty(Addr addr, ThreadId t)
    {
        (void)t;
        std::uint64_t s = setIndex(addr);
        Addr tag = tagOf(addr);
        for (unsigned w = 0; w < ways_; ++w) {
            CacheLine &l = line(s, w);
            if (l.valid && l.tag == tag) {
                l.dirty = true;
                l.lastUse = ++useClock_;
                return true;
            }
        }
        return false;
    }

    void
    invalidate(Addr addr)
    {
        std::uint64_t s = setIndex(addr);
        Addr tag = tagOf(addr);
        for (unsigned w = 0; w < ways_; ++w) {
            CacheLine &l = line(s, w);
            if (l.valid && l.tag == tag) {
                l.valid = false;
                l.dirty = false;
                policy_->onEvict(l.owner);
                return;
            }
        }
    }

    std::uint64_t
    occupancy(ThreadId t) const
    {
        std::uint64_t n = 0;
        for (const CacheLine &l : lines_) {
            if (l.valid && l.owner == t)
                ++n;
        }
        return n;
    }

  private:
    unsigned lineShift() const { return log2i(lineBytes_); }

    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / lineBytes_ >> indexShift_) % sets_;
    }

    Addr
    tagOf(Addr addr) const
    {
        return (addr / lineBytes_ >> indexShift_) / sets_;
    }

    CacheLine &line(std::uint64_t s, unsigned w)
    {
        return lines_[s * ways_ + w];
    }

    std::uint64_t sets_;
    unsigned ways_;
    unsigned lineBytes_;
    unsigned indexShift_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<CacheLine> lines_;
    std::uint64_t useClock_ = 0;
};

struct Geometry
{
    std::uint64_t sets = 16;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    unsigned indexShift = 0;
};

/**
 * Run @p body under both vec dispatch modes: scalar-forced first,
 * then the compiled vector path.  @p body must build fresh arrays on
 * every call (the mode switch is runtime state, so one binary proves
 * both paths).  Restores the default (vector) mode on exit.
 */
template <class Body>
void
forEachVecMode(Body &&body)
{
    for (bool scalar : {true, false}) {
        vec::forceScalar = scalar;
        SCOPED_TRACE(scalar ? "vec mode: forced scalar"
                            : "vec mode: native");
        body();
        if (::testing::Test::HasFatalFailure())
            break;
    }
    vec::forceScalar = false;
}

/** LRU behind PolicyKind::Other: the virtual-oracle fill path. */
class OtherKindLru : public LruReplacement
{
  public:
    PolicyKind kind() const override { return PolicyKind::Other; }
    std::string name() const override { return "OtherLRU"; }
};

/**
 * Drive both arrays through @p steps random operations and compare
 * every replacement decision and the occupancy state after each one.
 */
void
runDifferential(CacheArray &soa, RefArray &ref, ThreadId threads,
                const Geometry &g, std::uint64_t seed,
                std::uint64_t steps)
{
    // Footprint ~4x the cache so sets run full and victims matter.
    const Addr span = g.sets * g.ways * g.lineBytes * 4;

    // The audit tap sees the SoA array's pre-overwrite lines and its
    // chosen way; replaying the lines through the virtual oracle of
    // the *same* array checks kind-dispatch vs virtual agreement on
    // the identical input, independent of the reference model.
    unsigned soa_victim = 0;
    soa.setVictimAudit([&](std::span<const CacheLine> set, ThreadId t,
                           unsigned way) {
        soa_victim = way;
        EXPECT_EQ(soa.policy().victim(set, t), way)
            << "devirtualized victim diverges from oracle";
    });

    Rng rng(seed);
    for (std::uint64_t i = 0; i < steps; ++i) {
        ThreadId t = static_cast<ThreadId>(rng.below(threads));
        Addr addr =
            (rng.below(static_cast<std::uint32_t>(span / g.lineBytes))
             * static_cast<Addr>(g.lineBytes))
            + rng.below(g.lineBytes);
        unsigned op = rng.below(10);
        if (op < 6) {
            // Access: fill on miss, like the cache models do.
            bool hit_s = soa.lookup(addr, true, t);
            bool hit_r = ref.lookup(addr, true, t);
            ASSERT_EQ(hit_s, hit_r) << "hit divergence at step " << i;
            if (!hit_s) {
                bool dirty = rng.below(2) != 0;
                unsigned ref_victim = 0;
                Eviction es = soa.insert(addr, t, dirty);
                Eviction er = ref.insert(addr, t, dirty, ref_victim);
                ASSERT_EQ(soa_victim, ref_victim)
                    << "victim way divergence at step " << i;
                ASSERT_EQ(es.valid, er.valid) << "step " << i;
                ASSERT_EQ(es.dirty, er.dirty) << "step " << i;
                ASSERT_EQ(es.lineAddr, er.lineAddr) << "step " << i;
                ASSERT_EQ(es.owner, er.owner) << "step " << i;
            }
        } else if (op < 8) {
            ASSERT_EQ(soa.markDirty(addr, t), ref.markDirty(addr, t))
                << "step " << i;
        } else if (op < 9) {
            soa.invalidate(addr);
            ref.invalidate(addr);
        } else {
            // Untouched probe (no LRU update on either side).
            ASSERT_EQ(soa.lookup(addr, false, t),
                      ref.lookup(addr, false, t))
                << "step " << i;
        }
        for (ThreadId j = 0; j < threads; ++j) {
            ASSERT_EQ(soa.occupancy(j), ref.occupancy(j))
                << "occupancy divergence for thread " << j
                << " at step " << i;
            ASSERT_EQ(soa.trackedOccupancy(j), ref.occupancy(j))
                << "tracked occupancy drift for thread " << j
                << " at step " << i;
        }
    }
    soa.setVictimAudit(nullptr);
}

TEST(SoaOracle, GlobalLru)
{
    forEachVecMode([] {
        Geometry g;
        CacheArray soa(g.sets, g.ways, g.lineBytes,
                       std::make_unique<LruReplacement>());
        RefArray ref(g.sets, g.ways, g.lineBytes,
                     std::make_unique<LruReplacement>());
        runDifferential(soa, ref, 4, g, 0xA11CE, 20'000);
    });
}

TEST(SoaOracle, VpcCapacityManager)
{
    // Unequal shares: thread 0 holds half the ways, 3 gets none
    // (always over any quota as soon as it owns a line), so both
    // victim conditions and the fallback paths are exercised.
    forEachVecMode([] {
        Geometry g;
        std::vector<double> betas = {0.5, 0.25, 0.25, 0.0};
        CacheArray soa(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<VpcCapacityManager>(betas, g.ways));
        RefArray ref(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<VpcCapacityManager>(betas, g.ways));
        runDifferential(soa, ref, 4, g, 0xB0B, 20'000);
    });
}

TEST(SoaOracle, VpcFairnessRefinement)
{
    // Small quotas push several threads over-allocation at once, so
    // condition 1 repeatedly selects among multiple threads' lines
    // (the globally-LRU fairness refinement).
    forEachVecMode([] {
        Geometry g;
        g.ways = 8;
        std::vector<double> betas = {0.125, 0.125, 0.125, 0.125};
        CacheArray soa(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<VpcCapacityManager>(betas, g.ways));
        RefArray ref(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<VpcCapacityManager>(betas, g.ways));
        runDifferential(soa, ref, 4, g, 0xFA12, 20'000);
    });
}

TEST(SoaOracle, GlobalOccupancyManager)
{
    forEachVecMode([] {
        Geometry g;
        std::uint64_t total = g.sets * g.ways;
        std::vector<double> betas = {0.5, 0.25, 0.125, 0.125};
        CacheArray soa(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<GlobalOccupancyManager>(betas, total));
        RefArray ref(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<GlobalOccupancyManager>(betas, total));
        runDifferential(soa, ref, 4, g, 0xCAFE, 20'000);
    });
}

TEST(SoaOracle, OtherKindVirtualFallback)
{
    // PolicyKind::Other routes every victim through the virtual
    // oracle; the vectorized lookup/markDirty/invalidate scans still
    // run, so this pins their agreement on the fallback fill path.
    forEachVecMode([] {
        Geometry g;
        CacheArray soa(g.sets, g.ways, g.lineBytes,
                       std::make_unique<OtherKindLru>());
        RefArray ref(g.sets, g.ways, g.lineBytes,
                     std::make_unique<OtherKindLru>());
        runDifferential(soa, ref, 4, g, 0xD1CE, 20'000);
    });
}

TEST(SoaOracle, BankInterleavedIndexShift)
{
    // A banked array discards interleave bits before set indexing;
    // the eviction-address reconstruction must agree too.
    forEachVecMode([] {
        Geometry g;
        g.indexShift = 2;
        std::vector<double> betas = {0.5, 0.5};
        CacheArray soa(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<VpcCapacityManager>(betas, g.ways),
            g.indexShift);
        RefArray ref(
            g.sets, g.ways, g.lineBytes,
            std::make_unique<VpcCapacityManager>(betas, g.ways),
            g.indexShift);
        runDifferential(soa, ref, 2, g, 0x5EED, 20'000);
    });
}

TEST(SoaOracle, OddWaysLru)
{
    // Associativities off the vector-width grid: 3 (below one
    // 4-lane vector), 5 (one full vector + 1-way tail) and 6.  These
    // hit the masked-tail bits and tail-padding loads of eqMask64 /
    // minIndex64 that power-of-two geometries never exercise.
    for (unsigned ways : {3u, 5u, 6u}) {
        SCOPED_TRACE("ways=" + std::to_string(ways));
        forEachVecMode([ways] {
            Geometry g;
            g.ways = ways;
            CacheArray soa(g.sets, g.ways, g.lineBytes,
                           std::make_unique<LruReplacement>());
            RefArray ref(g.sets, g.ways, g.lineBytes,
                         std::make_unique<LruReplacement>());
            runDifferential(soa, ref, 4, g, 0x0DD + ways, 20'000);
        });
    }
}

TEST(SoaOracle, OddWaysVpcCapacity)
{
    // The same off-grid geometries under the VPC capacity manager,
    // whose condition-1/2 victim scans run minIndex64 over sparse
    // owner masks (arbitrary subsets of a non-multiple-width set).
    for (unsigned ways : {3u, 5u, 6u}) {
        SCOPED_TRACE("ways=" + std::to_string(ways));
        forEachVecMode([ways] {
            Geometry g;
            g.ways = ways;
            std::vector<double> betas = {0.34, 0.33, 0.33, 0.0};
            CacheArray soa(
                g.sets, g.ways, g.lineBytes,
                std::make_unique<VpcCapacityManager>(betas, g.ways));
            RefArray ref(
                g.sets, g.ways, g.lineBytes,
                std::make_unique<VpcCapacityManager>(betas, g.ways));
            runDifferential(soa, ref, 4, g, 0x0DD1 + ways, 20'000);
        });
    }
}

} // namespace
} // namespace vpc
