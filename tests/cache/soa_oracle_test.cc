/**
 * @file
 * Randomized-trace golden differential for the structure-of-arrays
 * CacheArray (DESIGN.md 5e).
 *
 * The SoA rebuild keeps the virtual ReplacementPolicy interface as an
 * oracle while the fill path dispatches on PolicyKind and computes
 * victims with bitmask arithmetic.  This test drives a CacheArray and
 * an array-of-structures reference model (which consults the virtual
 * policy for every victim) through the same randomized trace of
 * lookups, fills, dirty-marks and invalidations, asserting at every
 * step:
 *
 *  - identical victim ways (via the setVictimAudit tap, replayed
 *    through ReplacementPolicy::victim on the pre-overwrite lines);
 *  - identical evictions (valid/dirty/address/owner);
 *  - identical per-thread occupancy.
 *
 * Covered policies: global LRU, the VPC capacity manager (including
 * the multi-over-quota fairness refinement) and the flexible
 * whole-cache occupancy manager.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/replacement.hh"
#include "sim/random.hh"

namespace vpc
{
namespace
{

/**
 * Array-of-structures reference cache: the pre-SoA CacheArray
 * semantics, with every victim chosen by the virtual policy oracle.
 */
class RefArray
{
  public:
    RefArray(std::uint64_t sets, unsigned ways, unsigned line_bytes,
             std::unique_ptr<ReplacementPolicy> policy,
             unsigned index_shift = 0)
        : sets_(sets), ways_(ways), lineBytes_(line_bytes),
          indexShift_(index_shift), policy_(std::move(policy)),
          lines_(sets * ways)
    {
    }

    bool
    lookup(Addr addr, bool touch, ThreadId t)
    {
        (void)t;
        std::uint64_t s = setIndex(addr);
        Addr tag = tagOf(addr);
        for (unsigned w = 0; w < ways_; ++w) {
            CacheLine &l = line(s, w);
            if (l.valid && l.tag == tag) {
                if (touch)
                    l.lastUse = ++useClock_;
                return true;
            }
        }
        return false;
    }

    /** Insert; @p victim_out receives the chosen way. */
    Eviction
    insert(Addr addr, ThreadId t, bool dirty, unsigned &victim_out)
    {
        std::uint64_t s = setIndex(addr);
        std::span<const CacheLine> set{&lines_[s * ways_], ways_};
        unsigned w = policy_->victim(set, t);
        victim_out = w;
        CacheLine &l = line(s, w);
        Eviction ev;
        if (l.valid) {
            ev.valid = true;
            ev.dirty = l.dirty;
            ev.owner = l.owner;
            Addr low = (addr >> lineShift())
                & ((Addr{1} << indexShift_) - 1);
            ev.lineAddr = (((l.tag * sets_ + s) << indexShift_) | low)
                * lineBytes_;
            policy_->onEvict(l.owner);
        }
        l.tag = tagOf(addr);
        l.valid = true;
        l.dirty = dirty;
        l.owner = t;
        l.lastUse = ++useClock_;
        policy_->onInsert(t);
        return ev;
    }

    bool
    markDirty(Addr addr, ThreadId t)
    {
        (void)t;
        std::uint64_t s = setIndex(addr);
        Addr tag = tagOf(addr);
        for (unsigned w = 0; w < ways_; ++w) {
            CacheLine &l = line(s, w);
            if (l.valid && l.tag == tag) {
                l.dirty = true;
                l.lastUse = ++useClock_;
                return true;
            }
        }
        return false;
    }

    void
    invalidate(Addr addr)
    {
        std::uint64_t s = setIndex(addr);
        Addr tag = tagOf(addr);
        for (unsigned w = 0; w < ways_; ++w) {
            CacheLine &l = line(s, w);
            if (l.valid && l.tag == tag) {
                l.valid = false;
                l.dirty = false;
                policy_->onEvict(l.owner);
                return;
            }
        }
    }

    std::uint64_t
    occupancy(ThreadId t) const
    {
        std::uint64_t n = 0;
        for (const CacheLine &l : lines_) {
            if (l.valid && l.owner == t)
                ++n;
        }
        return n;
    }

  private:
    unsigned lineShift() const { return log2i(lineBytes_); }

    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / lineBytes_ >> indexShift_) % sets_;
    }

    Addr
    tagOf(Addr addr) const
    {
        return (addr / lineBytes_ >> indexShift_) / sets_;
    }

    CacheLine &line(std::uint64_t s, unsigned w)
    {
        return lines_[s * ways_ + w];
    }

    std::uint64_t sets_;
    unsigned ways_;
    unsigned lineBytes_;
    unsigned indexShift_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<CacheLine> lines_;
    std::uint64_t useClock_ = 0;
};

struct Geometry
{
    std::uint64_t sets = 16;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    unsigned indexShift = 0;
};

/**
 * Drive both arrays through @p steps random operations and compare
 * every replacement decision and the occupancy state after each one.
 */
void
runDifferential(CacheArray &soa, RefArray &ref, ThreadId threads,
                const Geometry &g, std::uint64_t seed,
                std::uint64_t steps)
{
    // Footprint ~4x the cache so sets run full and victims matter.
    const Addr span = g.sets * g.ways * g.lineBytes * 4;

    // The audit tap sees the SoA array's pre-overwrite lines and its
    // chosen way; replaying the lines through the virtual oracle of
    // the *same* array checks kind-dispatch vs virtual agreement on
    // the identical input, independent of the reference model.
    unsigned soa_victim = 0;
    soa.setVictimAudit([&](std::span<const CacheLine> set, ThreadId t,
                           unsigned way) {
        soa_victim = way;
        EXPECT_EQ(soa.policy().victim(set, t), way)
            << "devirtualized victim diverges from oracle";
    });

    Rng rng(seed);
    for (std::uint64_t i = 0; i < steps; ++i) {
        ThreadId t = static_cast<ThreadId>(rng.below(threads));
        Addr addr =
            (rng.below(static_cast<std::uint32_t>(span / g.lineBytes))
             * static_cast<Addr>(g.lineBytes))
            + rng.below(g.lineBytes);
        unsigned op = rng.below(10);
        if (op < 6) {
            // Access: fill on miss, like the cache models do.
            bool hit_s = soa.lookup(addr, true, t);
            bool hit_r = ref.lookup(addr, true, t);
            ASSERT_EQ(hit_s, hit_r) << "hit divergence at step " << i;
            if (!hit_s) {
                bool dirty = rng.below(2) != 0;
                unsigned ref_victim = 0;
                Eviction es = soa.insert(addr, t, dirty);
                Eviction er = ref.insert(addr, t, dirty, ref_victim);
                ASSERT_EQ(soa_victim, ref_victim)
                    << "victim way divergence at step " << i;
                ASSERT_EQ(es.valid, er.valid) << "step " << i;
                ASSERT_EQ(es.dirty, er.dirty) << "step " << i;
                ASSERT_EQ(es.lineAddr, er.lineAddr) << "step " << i;
                ASSERT_EQ(es.owner, er.owner) << "step " << i;
            }
        } else if (op < 8) {
            ASSERT_EQ(soa.markDirty(addr, t), ref.markDirty(addr, t))
                << "step " << i;
        } else if (op < 9) {
            soa.invalidate(addr);
            ref.invalidate(addr);
        } else {
            // Untouched probe (no LRU update on either side).
            ASSERT_EQ(soa.lookup(addr, false, t),
                      ref.lookup(addr, false, t))
                << "step " << i;
        }
        for (ThreadId j = 0; j < threads; ++j) {
            ASSERT_EQ(soa.occupancy(j), ref.occupancy(j))
                << "occupancy divergence for thread " << j
                << " at step " << i;
            ASSERT_EQ(soa.trackedOccupancy(j), ref.occupancy(j))
                << "tracked occupancy drift for thread " << j
                << " at step " << i;
        }
    }
    soa.setVictimAudit(nullptr);
}

TEST(SoaOracle, GlobalLru)
{
    Geometry g;
    CacheArray soa(g.sets, g.ways, g.lineBytes,
                   std::make_unique<LruReplacement>());
    RefArray ref(g.sets, g.ways, g.lineBytes,
                 std::make_unique<LruReplacement>());
    runDifferential(soa, ref, 4, g, 0xA11CE, 20'000);
}

TEST(SoaOracle, VpcCapacityManager)
{
    // Unequal shares: thread 0 holds half the ways, 3 gets none
    // (always over any quota as soon as it owns a line), so both
    // victim conditions and the fallback paths are exercised.
    Geometry g;
    std::vector<double> betas = {0.5, 0.25, 0.25, 0.0};
    CacheArray soa(g.sets, g.ways, g.lineBytes,
                   std::make_unique<VpcCapacityManager>(betas, g.ways));
    RefArray ref(g.sets, g.ways, g.lineBytes,
                 std::make_unique<VpcCapacityManager>(betas, g.ways));
    runDifferential(soa, ref, 4, g, 0xB0B, 20'000);
}

TEST(SoaOracle, VpcFairnessRefinement)
{
    // Small quotas push several threads over-allocation at once, so
    // condition 1 repeatedly selects among multiple threads' lines
    // (the globally-LRU fairness refinement).
    Geometry g;
    g.ways = 8;
    std::vector<double> betas = {0.125, 0.125, 0.125, 0.125};
    CacheArray soa(g.sets, g.ways, g.lineBytes,
                   std::make_unique<VpcCapacityManager>(betas, g.ways));
    RefArray ref(g.sets, g.ways, g.lineBytes,
                 std::make_unique<VpcCapacityManager>(betas, g.ways));
    runDifferential(soa, ref, 4, g, 0xFA12, 20'000);
}

TEST(SoaOracle, GlobalOccupancyManager)
{
    Geometry g;
    std::uint64_t total = g.sets * g.ways;
    std::vector<double> betas = {0.5, 0.25, 0.125, 0.125};
    CacheArray soa(
        g.sets, g.ways, g.lineBytes,
        std::make_unique<GlobalOccupancyManager>(betas, total));
    RefArray ref(
        g.sets, g.ways, g.lineBytes,
        std::make_unique<GlobalOccupancyManager>(betas, total));
    runDifferential(soa, ref, 4, g, 0xCAFE, 20'000);
}

TEST(SoaOracle, BankInterleavedIndexShift)
{
    // A banked array discards interleave bits before set indexing;
    // the eviction-address reconstruction must agree too.
    Geometry g;
    g.indexShift = 2;
    std::vector<double> betas = {0.5, 0.5};
    CacheArray soa(g.sets, g.ways, g.lineBytes,
                   std::make_unique<VpcCapacityManager>(betas, g.ways),
                   g.indexShift);
    RefArray ref(g.sets, g.ways, g.lineBytes,
                 std::make_unique<VpcCapacityManager>(betas, g.ways),
                 g.indexShift);
    runDifferential(soa, ref, 2, g, 0x5EED, 20'000);
}

} // namespace
} // namespace vpc
