/**
 * @file
 * Unit tests for the store gathering buffer policies (Section 3.1).
 */

#include <gtest/gtest.h>

#include "cache/store_gather_buffer.hh"

namespace vpc
{
namespace
{

void
deliver(StoreGatherBuffer &sgb, Addr line, Cycle now = 0)
{
    sgb.reserve();
    sgb.addStore(line, now);
}

TEST(StoreGatherBuffer, GathersSameLineStores)
{
    StoreGatherBuffer sgb(8, 6);
    deliver(sgb, 0x100);
    deliver(sgb, 0x100);
    deliver(sgb, 0x140);
    EXPECT_EQ(sgb.occupancy(), 2u);
    EXPECT_EQ(sgb.storesTotal(), 3u);
    EXPECT_EQ(sgb.storesGathered(), 1u);
}

TEST(StoreGatherBuffer, ReservationsCountAgainstCapacity)
{
    StoreGatherBuffer sgb(2, 2);
    sgb.reserve();
    sgb.reserve();
    EXPECT_TRUE(sgb.full());
    sgb.addStore(0x0, 0);
    EXPECT_TRUE(sgb.full()); // 1 entry + 1 reservation of 2
    sgb.addStore(0x0, 0);    // gathered: releases the reservation
    EXPECT_EQ(sgb.occupancy(), 1u);
    EXPECT_FALSE(sgb.full());
}

TEST(StoreGatherBuffer, RetireAtNPolicy)
{
    StoreGatherBuffer sgb(8, 6);
    for (unsigned i = 0; i < 5; ++i)
        deliver(sgb, 0x40 * i);
    EXPECT_FALSE(sgb.hasRetirable());
    EXPECT_TRUE(sgb.loadsMayBypass());
    deliver(sgb, 0x40 * 5); // occupancy hits the high-water mark
    EXPECT_TRUE(sgb.hasRetirable());
    EXPECT_FALSE(sgb.loadsMayBypass()); // RoW inversion
    sgb.popRetire();
    EXPECT_FALSE(sgb.hasRetirable()); // back below the mark
    EXPECT_TRUE(sgb.loadsMayBypass());
}

TEST(StoreGatherBuffer, RetiresInFifoOrder)
{
    StoreGatherBuffer sgb(4, 2);
    deliver(sgb, 0x100);
    deliver(sgb, 0x200);
    ASSERT_TRUE(sgb.hasRetirable());
    EXPECT_EQ(*sgb.peekRetire(), 0x100u);
    sgb.popRetire();
    EXPECT_EQ(*sgb.peekRetire(), 0x200u);
}

TEST(StoreGatherBuffer, LoadConflictDetection)
{
    StoreGatherBuffer sgb(8, 6);
    deliver(sgb, 0x100);
    EXPECT_TRUE(sgb.loadConflict(0x100));
    EXPECT_FALSE(sgb.loadConflict(0x140));
}

TEST(StoreGatherBuffer, PartialFlushRetiresConflictorAndElders)
{
    StoreGatherBuffer sgb(8, 6);
    deliver(sgb, 0x100);
    deliver(sgb, 0x200);
    deliver(sgb, 0x300);
    sgb.flushThrough(0x200);
    // Entries 0x100 and 0x200 must drain; 0x300 may stay gathered.
    EXPECT_TRUE(sgb.hasRetirable());
    sgb.popRetire();
    EXPECT_TRUE(sgb.hasRetirable());
    sgb.popRetire();
    EXPECT_FALSE(sgb.hasRetirable());
    EXPECT_EQ(sgb.occupancy(), 1u);
    EXPECT_FALSE(sgb.loadConflict(0x200));
}

TEST(StoreGatherBuffer, FlushOfUnknownLineIsNoOp)
{
    StoreGatherBuffer sgb(8, 6);
    deliver(sgb, 0x100);
    sgb.flushThrough(0x999);
    EXPECT_FALSE(sgb.hasRetirable());
}

TEST(StoreGatherBuffer, PanicsOnProtocolViolations)
{
    StoreGatherBuffer sgb(2, 2);
    EXPECT_DEATH(sgb.addStore(0x0, 0), "reservation");
    EXPECT_DEATH(sgb.popRetire(), "empty");
}

TEST(StoreGatherBuffer, BadConfigIsFatal)
{
    EXPECT_EXIT((StoreGatherBuffer{4, 5}), testing::ExitedWithCode(1),
                "high-water");
    EXPECT_EXIT((StoreGatherBuffer{0, 0}), testing::ExitedWithCode(1),
                "entry");
}

} // namespace
} // namespace vpc
