/**
 * @file
 * Unit tests for the flexible whole-cache occupancy manager
 * (the Section 4.3 comparison class) and the replacement-policy
 * bookkeeping hooks.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache_array.hh"
#include "cache/replacement.hh"

namespace vpc
{
namespace
{

CacheLine
line(ThreadId owner, std::uint64_t last_use, bool valid = true)
{
    CacheLine l;
    l.valid = valid;
    l.owner = owner;
    l.lastUse = last_use;
    return l;
}

TEST(GlobalOccupancyManager, QuotasFromTotalLines)
{
    GlobalOccupancyManager mgr({0.5, 0.25}, 1000);
    EXPECT_EQ(mgr.quota(0), 500u);
    EXPECT_EQ(mgr.quota(1), 250u);
}

TEST(GlobalOccupancyManager, TracksOccupancyViaHooks)
{
    GlobalOccupancyManager mgr({0.5, 0.5}, 100);
    mgr.onInsert(0);
    mgr.onInsert(0);
    mgr.onInsert(1);
    mgr.onEvict(0);
    EXPECT_EQ(mgr.occupancy(0), 1u);
    EXPECT_EQ(mgr.occupancy(1), 1u);
}

TEST(GlobalOccupancyManager, VictimFromGloballyOverQuotaThread)
{
    GlobalOccupancyManager mgr({0.5, 0.5}, 4);
    // Thread 1 holds 3 of 4 lines: over its quota of 2.
    mgr.onInsert(0);
    mgr.onInsert(1);
    mgr.onInsert(1);
    mgr.onInsert(1);
    std::vector<CacheLine> set = {line(0, 1), line(1, 5), line(1, 2),
                                  line(1, 9)};
    // Thread 0's line is LRU in the set, but thread 0 is under quota:
    // thread 1's set-LRU line (index 2) goes instead.
    EXPECT_EQ(mgr.victim(set, 0), 2u);
}

TEST(GlobalOccupancyManager, NoPerSetProtection)
{
    // The flexibility trade-off: thread 0 is under its global quota,
    // so plain LRU applies and it can lose its only line in this set
    // to the requester -- the monotonicity hole of Section 4.3.
    GlobalOccupancyManager mgr({0.5, 0.5}, 100);
    mgr.onInsert(0);
    for (int i = 0; i < 3; ++i)
        mgr.onInsert(1);
    std::vector<CacheLine> set = {line(0, 1), line(1, 5), line(1, 7),
                                  line(1, 9)};
    EXPECT_EQ(mgr.victim(set, 1), 0u);
}

TEST(GlobalOccupancyManager, InvalidFirst)
{
    GlobalOccupancyManager mgr({1.0}, 10);
    std::vector<CacheLine> set = {line(0, 3), line(0, 1, false)};
    EXPECT_EQ(mgr.victim(set, 0), 1u);
}

TEST(GlobalOccupancyManager, CacheArrayDrivesTheHooks)
{
    auto policy = std::make_unique<GlobalOccupancyManager>(
        std::vector<double>{0.5, 0.5}, 8);
    GlobalOccupancyManager *mgr = policy.get();
    CacheArray array(4, 2, 64, std::move(policy));

    array.insert(0x0, 0, false);
    array.insert(0x40, 1, false);
    EXPECT_EQ(mgr->occupancy(0), 1u);
    EXPECT_EQ(mgr->occupancy(1), 1u);

    // Fill set 0's second way, then displace: one line is evicted so
    // the tracked total equals the number of resident lines.
    array.insert(0x0 + 64 * 4, 1, false);
    array.insert(0x0 + 64 * 8, 1, false); // evicts set 0's LRU
    EXPECT_EQ(mgr->occupancy(0) + mgr->occupancy(1), 3u);

    array.invalidate(0x40);
    EXPECT_EQ(mgr->occupancy(0) + mgr->occupancy(1), 2u);
}

TEST(GlobalOccupancyManager, OverAllocationFatal)
{
    EXPECT_EXIT((GlobalOccupancyManager{{0.6, 0.6}, 10}),
                testing::ExitedWithCode(1), "over-allocated");
}

} // namespace
} // namespace vpc
