/**
 * @file
 * Unit tests for the functional set-associative array.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "cache/cache_array.hh"
#include "cache/replacement.hh"

namespace vpc
{
namespace
{

CacheArray
makeArray(std::uint64_t sets = 4, unsigned ways = 2)
{
    return CacheArray(sets, ways, 64,
                      std::make_unique<LruReplacement>());
}

TEST(CacheArray, MissThenHit)
{
    CacheArray a = makeArray();
    EXPECT_FALSE(a.lookup(0x1000, true, 0));
    a.insert(0x1000, 0, false);
    EXPECT_TRUE(a.lookup(0x1000, true, 0));
    EXPECT_EQ(a.hitCount(), 1u);
    EXPECT_EQ(a.missCount(), 1u);
}

TEST(CacheArray, SubLineAddressesHitSameLine)
{
    CacheArray a = makeArray();
    a.insert(0x1000, 0, false);
    EXPECT_TRUE(a.lookup(0x103F, true, 0));
    EXPECT_FALSE(a.lookup(0x1040, true, 0));
}

TEST(CacheArray, LruEvictionOrder)
{
    CacheArray a = makeArray(1, 2); // one set, two ways
    a.insert(0x0, 0, false);
    a.insert(0x40, 0, false);
    a.lookup(0x0, true, 0); // make 0x0 MRU
    Eviction ev = a.insert(0x80, 0, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x40u);
    EXPECT_TRUE(a.lookup(0x0, false, 0));
    EXPECT_FALSE(a.lookup(0x40, false, 0));
}

TEST(CacheArray, EvictionReportsDirtyAndOwner)
{
    CacheArray a = makeArray(1, 1);
    a.insert(0x0, 3, true);
    Eviction ev = a.insert(0x40, 0, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.owner, 3u);
    EXPECT_EQ(ev.lineAddr, 0x0u);
}

TEST(CacheArray, EvictedAddressReconstruction)
{
    CacheArray a = makeArray(4, 1);
    Addr addr = 0x40 * (4 * 7 + 2); // tag 7, set 2
    a.insert(addr, 0, false);
    Eviction ev = a.insert(addr + 0x40 * 4 * 5, 0, false); // same set
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, addr);
}

TEST(CacheArray, MarkDirty)
{
    CacheArray a = makeArray();
    a.insert(0x1000, 0, false);
    EXPECT_TRUE(a.markDirty(0x1000, 0));
    EXPECT_FALSE(a.markDirty(0x2000, 0));
    Eviction ev = a.insert(0x1000 + 64 * 4 * 1, 0, false);
    (void)ev;
}

TEST(CacheArray, Invalidate)
{
    CacheArray a = makeArray();
    a.insert(0x1000, 0, false);
    a.invalidate(0x1000);
    EXPECT_FALSE(a.lookup(0x1000, false, 0));
}

TEST(CacheArray, OccupancyPerThread)
{
    CacheArray a = makeArray(1, 4);
    a.insert(0x0, 0, false);
    a.insert(0x40 * 4, 0, false);
    a.insert(0x80 * 4, 1, false);
    EXPECT_EQ(a.setOccupancy(0x0, 0), 2u);
    EXPECT_EQ(a.setOccupancy(0x0, 1), 1u);
    EXPECT_EQ(a.occupancy(0), 2u);
    EXPECT_EQ(a.occupancy(1), 1u);
}

TEST(CacheArray, UntouchedLookupDoesNotCountStats)
{
    CacheArray a = makeArray();
    a.lookup(0x1000, false, 0);
    EXPECT_EQ(a.missCount(), 0u);
}

TEST(CacheArray, IndexShiftSkipsInterleaveBits)
{
    // A bank of a 2-way interleaved cache sees only even line
    // numbers; with index_shift=1 the constant bit is discarded so
    // every set is usable.
    CacheArray a(4, 1, 64, std::make_unique<LruReplacement>(), 1);
    // Lines 0 and 8 (addresses 0x0, 0x200): (0>>1)%4 == (8>>1)%4 == 0.
    a.insert(0x0, 0, false);
    Eviction ev = a.insert(0x200, 0, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x0u);
    // Line 4 (address 0x100): (4>>1)%4 == 2 -- a different set.
    a.insert(0x100, 0, false);
    EXPECT_TRUE(a.lookup(0x200, false, 0));
    EXPECT_TRUE(a.lookup(0x100, false, 0));
}

TEST(CacheArray, BankStrideFillsEverySet)
{
    // Regression: without the shift, a bank fed every 2nd line left
    // half its sets permanently empty (halving effective capacity).
    const std::uint64_t sets = 8;
    CacheArray a(sets, 1, 64, std::make_unique<LruReplacement>(), 1);
    for (std::uint64_t i = 0; i < sets; ++i) {
        Eviction ev = a.insert(2 * 64 * i, 0, false); // even lines
        EXPECT_FALSE(ev.valid) << "line " << i;
    }
    for (std::uint64_t i = 0; i < sets; ++i)
        EXPECT_TRUE(a.lookup(2 * 64 * i, false, 0));
}

TEST(CacheArray, EvictionAddressRoundTripsWithShift)
{
    CacheArray a(4, 1, 64, std::make_unique<LruReplacement>(), 2);
    // Bank 3 of a 4-way interleave: line numbers 3, 19 (same set).
    Addr first = 3 * 64;
    Addr second = (3 + 16) * 64;
    a.insert(first, 0, false);
    Eviction ev = a.insert(second, 0, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, first);
}

TEST(CacheArray, BadGeometryIsFatal)
{
    EXPECT_EXIT(makeArray(3, 2), testing::ExitedWithCode(1),
                "power-of-two");
}

TEST(CacheArray, MoveTransfersStateAndLeavesSourceDestructible)
{
    // Copy is deleted and both move operations are defaulted; the
    // moved-from array holds only empty vectors and a null policy, so
    // destroying it (without further use) must be safe.
    CacheArray a = makeArray(4, 2);
    a.insert(0x1000, 1, true);
    CacheArray b = std::move(a);
    EXPECT_TRUE(b.lookup(0x1000, false, 1));
    EXPECT_EQ(b.trackedOccupancy(1), 1u);

    CacheArray c = makeArray(4, 2);
    c = std::move(b);
    EXPECT_TRUE(c.lookup(0x1000, false, 1));
    // a and b go out of scope moved-from; the destructors must not
    // touch the transferred state.
}

} // namespace
} // namespace vpc
