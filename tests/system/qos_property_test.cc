/**
 * @file
 * Property tests for the paper's central QoS claim: under VPC
 * arbitration a thread performs at least as well as on an equivalently
 * provisioned private machine, regardless of what the other threads
 * do -- swept across bandwidth allocations (parameterized).
 */

#include <gtest/gtest.h>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/microbench.hh"

namespace vpc
{
namespace
{

constexpr Cycle kWarmup = 30'000;
constexpr Cycle kMeasure = 60'000;

/** Run Loads+Stores on a 2-core CMP; @return per-thread IPC. */
std::vector<double>
runLoadsStores(ArbiterPolicy policy, double phi_stores)
{
    SystemConfig cfg = makeBaselineConfig(2, policy);
    // The sweep's endpoints deliberately leave one thread with no
    // allocation at all.
    cfg.allowUnallocatedShares = true;
    cfg.shares = {QosShare{1.0 - phi_stores, 0.5},
                  QosShare{phi_stores, 0.5}};
    cfg.validate();
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    CmpSystem sys(cfg, std::move(wl));
    return sys.runAndMeasure(kWarmup, kMeasure).ipc;
}

class VpcQosSweep : public ::testing::TestWithParam<double>
{};

TEST_P(VpcQosSweep, BothThreadsMeetTargetIpc)
{
    double phi_stores = GetParam();
    SystemConfig base = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    RunLengths lens{kWarmup, kMeasure};

    std::vector<double> ipc =
        runLoadsStores(ArbiterPolicy::Vpc, phi_stores);

    LoadsBenchmark loads(0);
    StoresBenchmark stores(1ull << 32);
    double target_loads =
        targetIpc(base, loads, 1.0 - phi_stores, 0.5, lens);
    double target_stores =
        targetIpc(base, stores, phi_stores, 0.5, lens);

    // 5% tolerance for preemption-latency and rounding effects
    // (Section 4.1.2: requests can be delayed by one max service
    // time; the private-equivalent latency scaling also rounds up).
    EXPECT_GE(ipc.at(0), 0.95 * target_loads)
        << "Loads below target at phi_stores=" << phi_stores;
    EXPECT_GE(ipc.at(1), 0.95 * target_stores)
        << "Stores below target at phi_stores=" << phi_stores;
}

INSTANTIATE_TEST_SUITE_P(BandwidthAllocations, VpcQosSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                         [](const auto &info) {
                             return "stores" +
                                 std::to_string(static_cast<int>(
                                     info.param * 100));
                         });


TEST(VpcQos, Figure1bAllocationGuaranteesEveryThread)
{
    // The paper's Figure 1b: 50% / 10% / 10% / 10% with 20%
    // unallocated.  Four Loads threads all flood the cache; each must
    // meet its own private-equivalent target, and the big allocation
    // must actually buy proportionally more throughput.
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    cfg.shares = {QosShare{0.5, 0.5}, QosShare{0.1, 0.1},
                  QosShare{0.1, 0.1}, QosShare{0.1, 0.1}};
    cfg.validate();
    std::vector<std::unique_ptr<Workload>> wl;
    for (unsigned t = 0; t < 4; ++t) {
        wl.push_back(std::make_unique<LoadsBenchmark>(
            (1ull << 40) * t));
    }
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);

    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    RunLengths lens{kWarmup, kMeasure};
    LoadsBenchmark loads(0);
    double target_big = targetIpc(base, loads, 0.5, 0.5, lens);
    double target_small = targetIpc(base, loads, 0.1, 0.1, lens);

    EXPECT_GE(s.ipc.at(0), 0.95 * target_big);
    for (unsigned t = 1; t < 4; ++t)
        EXPECT_GE(s.ipc.at(t), 0.95 * target_small) << "thread " << t;
    // The 20% unallocated bandwidth is excess: total exceeds the sum
    // of targets.
    double total = s.ipc[0] + s.ipc[1] + s.ipc[2] + s.ipc[3];
    EXPECT_GT(total, target_big + 3 * target_small);
    // And the 5x allocation buys roughly proportional throughput.
    EXPECT_GT(s.ipc.at(0), 3.0 * s.ipc.at(1));
}

TEST(VpcQos, RowFcfsStarvesStoresButVpcDoesNot)
{
    std::vector<double> row =
        runLoadsStores(ArbiterPolicy::RowFcfs, 0.5);
    std::vector<double> vpc = runLoadsStores(ArbiterPolicy::Vpc, 0.5);
    // The motivating flaw: RoW-FCFS starves the Stores thread.
    EXPECT_LT(row.at(1), 0.01);
    // VPC guarantees it half the bandwidth.
    EXPECT_GT(vpc.at(1), 0.05);
}

TEST(VpcQos, FcfsSplitsDataArrayTwoToOne)
{
    // Under FCFS, uniform interleaving gives the Stores thread 2/3 of
    // the data array (writes occupy it twice as long) -- Section 5.3.
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
    double loads_rate = static_cast<double>(s.l2Reads.at(0));
    double stores_rate = static_cast<double>(s.l2Writes.at(1));
    EXPECT_NEAR(stores_rate / loads_rate, 1.0, 0.15);
}

TEST(VpcQos, ExcessBandwidthIsRedistributed)
{
    // Stores allocated 75% but Loads gets leftover when Stores cannot
    // use its share... and vice versa: a thread running with an idle
    // partner exceeds its target.
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.shares = {QosShare{0.25, 0.5}, QosShare{0.75, 0.5}};
    cfg.validate();
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    // Thread 1 idles (pure compute): its bandwidth is excess.
    struct IdleWorkload : Workload
    {
        MicroOp next() override { return MicroOp{}; }
        std::string name() const override { return "idle"; }
        std::unique_ptr<Workload> clone(std::uint64_t) const override
        {
            return std::make_unique<IdleWorkload>();
        }
    };
    wl.push_back(std::make_unique<IdleWorkload>());
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);

    SystemConfig base = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    LoadsBenchmark loads(0);
    double target25 =
        targetIpc(base, loads, 0.25, 0.5, RunLengths{kWarmup,
                                                     kMeasure});
    // Work conservation: far above the 25% target.
    EXPECT_GT(s.ipc.at(0), 1.5 * target25);
}

} // namespace
} // namespace vpc
