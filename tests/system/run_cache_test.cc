/**
 * @file
 * Content-addressed run cache: key soundness and record fidelity.
 *
 * The cache is only allowed to exist because replayed records are
 * bitwise-indistinguishable from executed runs.  These tests pin the
 * three properties that guarantee it: digests are stable under
 * normalization and change under any result-affecting perturbation;
 * a hit returns the missed run's record exactly (memory and disk);
 * and damaged or foreign disk records degrade to misses, never to
 * wrong answers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <unistd.h>

#include "sim/cancel.hh"
#include "sim/format.hh"
#include "system/experiment.hh"
#include "system/options.hh"
#include "system/run_cache.hh"

namespace vpc
{
namespace
{

/** A cheap two-thread job (about a millisecond of simulation). */
RunJob
smallJob()
{
    RunJob job;
    job.config = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    job.workloads = {WorkloadKey{"loads", threadBaseAddr(0), 1},
                     WorkloadKey{"stores", threadBaseAddr(1), 2}};
    job.warmup = 500;
    job.measure = 2'000;
    return job;
}

void
expectSameRecord(const RunRecord &a, const RunRecord &b)
{
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.ipc, b.stats.ipc); // exact: bit-identical runs
    EXPECT_EQ(a.stats.instrs, b.stats.instrs);
    EXPECT_EQ(a.stats.l2Reads, b.stats.l2Reads);
    EXPECT_EQ(a.stats.l2Writes, b.stats.l2Writes);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_EQ(a.stats.sgbStores, b.stats.sgbStores);
    EXPECT_EQ(a.stats.sgbGathered, b.stats.sgbGathered);
    EXPECT_EQ(a.stats.tagUtil, b.stats.tagUtil);
    EXPECT_EQ(a.stats.dataUtil, b.stats.dataUtil);
    EXPECT_EQ(a.stats.busUtil, b.stats.busUtil);
    EXPECT_EQ(a.kernel.cyclesExecuted.value(),
              b.kernel.cyclesExecuted.value());
    EXPECT_EQ(a.kernel.cyclesSkipped.value(),
              b.kernel.cyclesSkipped.value());
    EXPECT_EQ(a.kernel.ticksExecuted.value(),
              b.kernel.ticksExecuted.value());
    EXPECT_EQ(a.kernel.eventsFired.value(),
              b.kernel.eventsFired.value());
    EXPECT_EQ(a.kernel.messagesSent.value(),
              b.kernel.messagesSent.value());
    EXPECT_EQ(a.kernel.wheelCascades.value(),
              b.kernel.wheelCascades.value());
    EXPECT_EQ(a.kernel.epochs.value(), b.kernel.epochs.value());
    EXPECT_EQ(a.kernel.barrierStalls.value(),
              b.kernel.barrierStalls.value());
}

/** Fresh per-test directory under the gtest temp root. */
std::string
testDir(const std::string &name)
{
    std::string dir = format("{}/vpc_run_cache_{}", ::testing::TempDir(),
                             name);
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(RunDigest, StableAcrossCopies)
{
    RunJob a = smallJob();
    RunJob b = a;
    EXPECT_EQ(runDigest(a), runDigest(b));
    EXPECT_EQ(runDigest(a), runDigest(a));
}

TEST(RunDigest, NormalizesDefaultedShares)
{
    // Empty shares mean "equal"; validate() fills them in, so the
    // explicit and defaulted spellings are the same job.
    RunJob expl = smallJob();
    RunJob defaulted = expl;
    defaulted.config.shares.clear();
    EXPECT_EQ(runDigest(expl), runDigest(defaulted));
}

TEST(RunDigest, ChangesUnderAnyResultAffectingPerturbation)
{
    const RunJob base = smallJob();
    const std::uint64_t d = runDigest(base);

    RunJob j = base;
    j.config.l2.ways /= 2;
    EXPECT_NE(runDigest(j), d) << "l2 ways";

    j = base;
    j.config.arbiterPolicy = ArbiterPolicy::Vpc;
    EXPECT_NE(runDigest(j), d) << "arbiter policy";

    j = base;
    j.config.shares = {QosShare{0.6, 0.5}, QosShare{0.4, 0.5}};
    EXPECT_NE(runDigest(j), d) << "phi shares";

    j = base;
    j.config.kernelSkip = false;
    EXPECT_NE(runDigest(j), d) << "kernel mode (counters differ)";

    j = base;
    j.config.kernelThreads = 3;
    EXPECT_NE(runDigest(j), d) << "kernel threads (counters differ)";

    j = base;
    j.workloads[0].spec = "idle";
    EXPECT_NE(runDigest(j), d) << "workload spec";

    j = base;
    j.workloads[1].seed = 99;
    EXPECT_NE(runDigest(j), d) << "workload seed";

    j = base;
    j.workloads[0].base = threadBaseAddr(7);
    EXPECT_NE(runDigest(j), d) << "workload base";

    j = base;
    j.warmup += 1;
    EXPECT_NE(runDigest(j), d) << "warmup";

    j = base;
    j.measure += 1;
    EXPECT_NE(runDigest(j), d) << "measure";

    // The one deliberate exclusion: profiling observes, never alters.
    j = base;
    j.config.profile = true;
    EXPECT_EQ(runDigest(j), d) << "profile must not key";
}

TEST(RunCacheTest, MissThenHitReturnsBitwiseSameRecord)
{
    RunJob job = smallJob();
    RunCache cache;
    RunResult miss = runAndMeasureCached(job, &cache);
    RunResult hit = runAndMeasureCached(job, &cache);
    RunResult uncached = runAndMeasureCached(job, nullptr);
    EXPECT_FALSE(miss.cacheHit);
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    expectSameRecord(miss.record, hit.record);
    expectSameRecord(miss.record, uncached.record);
}

TEST(RunCacheTest, DiskRoundTripIsExact)
{
    std::string dir = testDir("roundtrip");
    RunJob job = smallJob();
    std::uint64_t key = runDigest(job);

    RunCache writer(dir);
    RunResult computed = runAndMeasureCached(job, &writer);
    ASSERT_FALSE(computed.cacheHit);

    // A fresh cache (new process, conceptually) must replay the
    // record exactly, including the IEEE-754 bits of every double.
    RunCache reader(dir);
    RunRecord replayed;
    ASSERT_TRUE(reader.probe(key, replayed));
    EXPECT_EQ(reader.diskHits(), 1u);
    expectSameRecord(computed.record, replayed);
    std::filesystem::remove_all(dir);
}

TEST(RunCacheTest, RecordsArePublishedIntoShardedFanout)
{
    std::string dir = testDir("sharded");
    RunJob job = smallJob();
    std::uint64_t key = runDigest(job);

    RunCache writer(dir);
    runAndMeasureCached(job, &writer);

    // The record lands under <dir>/<first digest byte as 2 hex>/.
    std::string path = writer.recordPath(key);
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    std::string shard =
        std::filesystem::path(path).parent_path().filename().string();
    char want[8];
    std::snprintf(want, sizeof(want), "%02llx",
                  static_cast<unsigned long long>(key >> 56));
    EXPECT_EQ(shard, want);
    // And nothing was published flat in the store root.
    EXPECT_FALSE(
        std::filesystem::exists(writer.legacyRecordPath(key)));
    std::filesystem::remove_all(dir);
}

TEST(RunCacheTest, LegacyFlatLayoutRecordsStillServeHits)
{
    std::string dir = testDir("legacy_flat");
    RunJob job = smallJob();
    std::uint64_t key = runDigest(job);

    // Publish sharded, then relocate the record to where a pre-shard
    // store would have put it.
    RunCache writer(dir);
    RunResult computed = runAndMeasureCached(job, &writer);
    ASSERT_FALSE(computed.cacheHit);
    std::filesystem::rename(writer.recordPath(key),
                            writer.legacyRecordPath(key));

    RunCache reader(dir);
    RunRecord replayed;
    ASSERT_TRUE(reader.probe(key, replayed));
    EXPECT_EQ(reader.diskHits(), 1u);
    expectSameRecord(computed.record, replayed);
    std::filesystem::remove_all(dir);
}

TEST(RunCacheTest, CorruptRecordDegradesToMiss)
{
    std::string dir = testDir("corrupt");
    RunJob job = smallJob();
    std::uint64_t key = runDigest(job);

    RunCache writer(dir);
    RunResult computed = runAndMeasureCached(job, &writer);
    ASSERT_FALSE(computed.cacheHit);

    for (const char *garbage :
         {"", "{", "not json at all", "{\"schema\": 999}"}) {
        std::ofstream(writer.recordPath(key), std::ios::trunc)
            << garbage;
        RunCache reader(dir);
        RunRecord out;
        EXPECT_FALSE(reader.probe(key, out)) << garbage;
        // The recompute must still give the right answer and heal
        // the store.
        RunResult healed = runAndMeasureCached(job, &reader);
        EXPECT_FALSE(healed.cacheHit) << garbage;
        expectSameRecord(computed.record, healed.record);
    }
    RunCache reader(dir);
    RunRecord out;
    EXPECT_TRUE(reader.probe(key, out));
    std::filesystem::remove_all(dir);
}

TEST(RunCacheTest, ConcurrentSameKeyComputesOnce)
{
    RunJob job = smallJob();
    RunCache cache;
    std::atomic<int> computes{0};
    std::vector<std::thread> threads;
    std::vector<RunRecord> records(4);
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&, i] {
            records[i] = cache.lookupOrCompute(
                runDigest(job), [&] {
                    ++computes;
                    return runAndMeasureCached(job, nullptr).record;
                });
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 3u);
    for (int i = 1; i < 4; ++i)
        expectSameRecord(records[0], records[i]);
}

TEST(RunCacheJanitor, ReclaimsTempsOfDeadWritersOnly)
{
    namespace fs = std::filesystem;
    std::string dir = testDir("janitor");
    fs::create_directories(dir);

    // A temp stamped with a pid that cannot be alive (beyond
    // pid_max), one stamped with our own live pid, and a record.
    std::string dead = dir + "/aa.json.tmp.4194304999.0";
    std::string live = format("{}/bb.json.tmp.{}.0", dir,
                              static_cast<std::uint64_t>(::getpid()));
    std::string record = dir + "/cc.json";
    for (const std::string &p : {dead, live, record})
        std::ofstream(p) << "x";

    EXPECT_EQ(RunCache::gcStaleTemps(dir), 1u);
    EXPECT_FALSE(fs::exists(dead));
    EXPECT_TRUE(fs::exists(live));
    EXPECT_TRUE(fs::exists(record));
}

TEST(RunCacheJanitor, ReclaimsPidlessTempsByAgeOnly)
{
    namespace fs = std::filesystem;
    std::string dir = testDir("janitor_age");
    fs::create_directories(dir);

    std::string old_tmp = dir + "/aa.json.tmp.x";
    std::string new_tmp = dir + "/bb.json.tmp.y";
    std::ofstream(old_tmp) << "x";
    std::ofstream(new_tmp) << "x";
    fs::last_write_time(old_tmp, fs::file_time_type::clock::now() -
                                     std::chrono::hours(2));

    EXPECT_EQ(RunCache::gcStaleTemps(dir, std::chrono::minutes(15)),
              1u);
    EXPECT_FALSE(fs::exists(old_tmp));
    EXPECT_TRUE(fs::exists(new_tmp));
}

TEST(RunCacheJanitor, DescendsIntoShardSubdirectories)
{
    namespace fs = std::filesystem;
    std::string dir = testDir("janitor_shards");
    fs::create_directories(dir + "/ab");
    fs::create_directories(dir + "/not-a-shard");

    std::string dead = dir + "/ab/cc.json.tmp.4194304999.0";
    std::string foreign = dir + "/not-a-shard/dd.json.tmp.4194304999.0";
    std::ofstream(dead) << "x";
    std::ofstream(foreign) << "x";

    EXPECT_EQ(RunCache::gcStaleTemps(dir), 1u);
    EXPECT_FALSE(fs::exists(dead));
    // Only 2-hex shard dirs are ours to clean.
    EXPECT_TRUE(fs::exists(foreign));
    fs::remove_all(dir);
}

TEST(RunCacheJanitor, RunsOnStoreOpen)
{
    namespace fs = std::filesystem;
    std::string dir = testDir("janitor_open");
    fs::create_directories(dir);
    std::string dead = dir + "/aa.json.tmp.4194304999.0";
    std::ofstream(dead) << "x";
    RunCache cache(dir);
    EXPECT_FALSE(fs::exists(dead));
}

TEST(RunCacheTest, UnusableStoreDirCountsAStoreError)
{
    // A store dir that is actually a file cannot be created; the
    // cache must degrade to in-process-only and say so in the
    // counter (works even when the tests run as root, unlike a
    // permissions-based probe).
    std::string dir = testDir("store_err");
    std::filesystem::create_directories(dir);
    std::string blocker = dir + "/not_a_dir";
    std::ofstream(blocker) << "x";

    RunCache cache(blocker + "/sub");
    EXPECT_GE(cache.storeErrors(), 1u);

    // Still fully functional as an in-process cache.
    RunRecord rec = cache.lookupOrCompute(1, [] {
        RunRecord r;
        r.endCycle = 42;
        return r;
    });
    EXPECT_EQ(rec.endCycle, 42u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(RunCacheTest, ThrowingComputeReleasesKeyAndWaiters)
{
    RunCache cache;
    EXPECT_THROW(cache.lookupOrCompute(
                     7, []() -> RunRecord {
                         throw std::runtime_error("boom");
                     }),
                 std::runtime_error);

    // The key is not stuck "computing": a retry computes fresh.
    RunRecord rec = cache.lookupOrCompute(7, [] {
        RunRecord r;
        r.endCycle = 9;
        return r;
    });
    EXPECT_EQ(rec.endCycle, 9u);

    // Concurrent flavor: the computer throws while a waiter blocks
    // on the same key; the waiter must take over, not hang.
    std::atomic<bool> first_entered{false};
    std::atomic<bool> release_first{false};
    std::thread thrower([&] {
        try {
            cache.lookupOrCompute(8, [&]() -> RunRecord {
                first_entered.store(true);
                while (!release_first.load())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                throw std::runtime_error("boom");
            });
        } catch (const std::runtime_error &) {
        }
    });
    while (!first_entered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::thread waiter([&] {
        release_first.store(true);
        RunRecord r = cache.lookupOrCompute(8, [] {
            RunRecord rr;
            rr.endCycle = 11;
            return rr;
        });
        EXPECT_EQ(r.endCycle, 11u);
    });
    thrower.join();
    waiter.join();
}

TEST(RunSupervision, PreCancelledJobThrowsOnBothKernels)
{
    for (unsigned threads : {1u, 2u}) {
        RunJob job = smallJob();
        job.config.kernelThreads = threads;
        CancelToken cancel{true}; // already cancelled
        RunSupervision sup;
        sup.cancel = &cancel;
        EXPECT_THROW(runAndMeasureCached(job, nullptr, &sup),
                     JobCancelled)
            << "kernelThreads=" << threads;
    }
}

TEST(RunSupervision, ObserveOnlyForCompletingRuns)
{
    // A supervised run that is never cancelled must produce the
    // exact record an unsupervised run does (counters included) —
    // otherwise the daemon's records would diverge from direct
    // execution.
    RunJob job = smallJob();
    RunResult plain = runAndMeasureCached(job, nullptr);
    CancelToken cancel{false};
    RunSupervision sup;
    sup.cancel = &cancel;
    sup.deadlineMs = 60'000; // generous; must not fire
    RunResult supervised = runAndMeasureCached(job, nullptr, &sup);
    expectSameRecord(plain.record, supervised.record);
}

TEST(RunSupervision, BadWorkloadSpecThrowsCatchably)
{
    RunJob job = smallJob();
    job.workloads[0].spec = "no-such-workload";
    EXPECT_THROW(runAndMeasureCached(job, nullptr),
                 std::runtime_error);
}

} // namespace
} // namespace vpc
