/**
 * @file
 * Unit tests for the bench table formatter.
 */

#include <gtest/gtest.h>

#include "system/table_printer.hh"

namespace vpc
{
namespace
{

TEST(TablePrinter, NumFormatsFixedPoint)
{
    EXPECT_EQ(TablePrinter::num(3.14159), "3.142");
    EXPECT_EQ(TablePrinter::num(3.14159, 1), "3.1");
    EXPECT_EQ(TablePrinter::num(0.0, 2), "0.00");
    EXPECT_EQ(TablePrinter::num(-1.5, 0), "-2");
}

TEST(TablePrinter, PctFormatsPercentages)
{
    EXPECT_EQ(TablePrinter::pct(0.5), "50.0%");
    EXPECT_EQ(TablePrinter::pct(1.0), "100.0%");
    EXPECT_EQ(TablePrinter::pct(0.123), "12.3%");
    EXPECT_EQ(TablePrinter::pct(0.0), "0.0%");
}

TEST(TablePrinter, PrintsWithoutCrashing)
{
    // Output goes to stdout; gtest captures it.  Exercise the API,
    // including short rows and over-long cells.
    testing::internal::CaptureStdout();
    TablePrinter t("Title", {"A", "LongerHeading"}, 6);
    t.row({"x", "y"});
    t.row({"only-one-cell"});
    t.row({"a-cell-longer-than-its-column", "z"});
    t.rule();
    std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("LongerHeading"), std::string::npos);
    EXPECT_NE(out.find("only-one-cell"), std::string::npos);
}

} // namespace
} // namespace vpc
