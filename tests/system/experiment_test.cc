/**
 * @file
 * Unit tests for the experiment helpers (target IPC machinery,
 * aggregate metrics).
 */

#include <gtest/gtest.h>

#include "system/experiment.hh"
#include "workload/microbench.hh"

namespace vpc
{
namespace
{

TEST(Experiment, CeilEven)
{
    EXPECT_EQ(ceilEven(4.0), 4u);
    EXPECT_EQ(ceilEven(5.0), 6u);
    EXPECT_EQ(ceilEven(5.33), 6u);
    EXPECT_EQ(ceilEven(4.01), 6u);
    EXPECT_EQ(ceilEven(0.5), 2u);
}

TEST(Experiment, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.5}), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(Experiment, Minimum)
{
    EXPECT_DOUBLE_EQ(minimum({0.7, 0.2, 0.9}), 0.2);
    EXPECT_DOUBLE_EQ(minimum({}), 0.0);
}

TEST(Experiment, PrivateConfigScalesResources)
{
    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    SystemConfig priv = makePrivateConfig(base, 0.5, 0.25);
    EXPECT_EQ(priv.numProcessors, 1u);
    EXPECT_EQ(priv.arbiterPolicy, ArbiterPolicy::RowFcfs);
    // Latencies scale by 1/phi = 2.
    EXPECT_EQ(priv.l2.tagLatency, 8u);
    EXPECT_EQ(priv.l2.dataLatency, 16u);
    EXPECT_EQ(priv.l2.busBeatCycles, 4u);
    // beta * 32 = 8 ways; same sets per bank as the shared cache.
    EXPECT_EQ(priv.l2.ways, 8u);
    EXPECT_EQ(priv.l2.setsPerBank(), base.l2.setsPerBank());
}

TEST(Experiment, PrivateConfigFullShareIsIdentityOnLatency)
{
    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    SystemConfig priv = makePrivateConfig(base, 1.0, 1.0);
    EXPECT_EQ(priv.l2.tagLatency, base.l2.tagLatency);
    EXPECT_EQ(priv.l2.dataLatency, base.l2.dataLatency);
    EXPECT_EQ(priv.l2.ways, base.l2.ways);
}

TEST(Experiment, ZeroPhiHasZeroTarget)
{
    SystemConfig base = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    LoadsBenchmark wl(0);
    EXPECT_DOUBLE_EQ(targetIpc(base, wl, 0.0, 0.5), 0.0);
}

TEST(Experiment, TargetIpcScalesWithBandwidthShare)
{
    SystemConfig base = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    LoadsBenchmark wl(0);
    RunLengths lens{20'000, 50'000};
    double full = targetIpc(base, wl, 1.0, 0.5, lens);
    double half = targetIpc(base, wl, 0.5, 0.5, lens);
    // Loads is bandwidth-bound: halving the bandwidth roughly halves
    // the target.
    EXPECT_GT(full, 0.2);
    EXPECT_LT(half, 0.65 * full);
    EXPECT_GT(half, 0.3 * full);
}

TEST(Experiment, BaselineConfigEqualShares)
{
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    EXPECT_EQ(cfg.shares.size(), 4u);
    EXPECT_DOUBLE_EQ(cfg.shares[2].phi, 0.25);
    EXPECT_EQ(cfg.arbiterPolicy, ArbiterPolicy::Vpc);
}

} // namespace
} // namespace vpc
