/**
 * @file
 * Integration tests: the full CMP runs the microbenchmarks end to end.
 */

#include <gtest/gtest.h>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/microbench.hh"

namespace vpc
{
namespace
{

std::vector<std::unique_ptr<Workload>>
twoThreadLoadsStores()
{
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    return wl;
}

TEST(CmpSystem, SingleThreadLoadsMakesProgress)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(20'000, 50'000);
    // Loads is bound by the data arrays: 2 banks x 1 read / 8 cycles
    // = 0.25 loads/cycle; with 4 loads per 5 instructions the IPC
    // ceiling is 0.3125.
    EXPECT_GT(s.ipc.at(0), 0.15);
    EXPECT_LE(s.ipc.at(0), 0.32);
    // Every load misses the L1 (32KB array vs 16KB cache) and hits
    // the L2.
    EXPECT_GT(s.l2Reads.at(0), 0u);
    EXPECT_EQ(s.l2Writes.at(0), 0u);
}

TEST(CmpSystem, SingleThreadStoresMakesProgress)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<StoresBenchmark>(0));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(20'000, 50'000);
    // Stores is bound by data-array writes: 2 banks / 16 cycles =
    // 0.125 stores/cycle -> IPC ceiling 0.15625.
    EXPECT_GT(s.ipc.at(0), 0.08);
    EXPECT_LE(s.ipc.at(0), 0.16);
    EXPECT_GT(s.l2Writes.at(0), 0u);
    // Consecutive stores hit different lines: nothing gathers.
    EXPECT_LT(s.gatherRate(0), 0.05);
}

TEST(CmpSystem, MicrobenchmarksDoNotMissL2)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(50'000, 50'000);
    // After warmup the 32KB array is L2 resident.
    EXPECT_EQ(s.l2Misses.at(0), 0u);
}

TEST(CmpSystem, UtilizationsAreConsistent)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    CmpSystem sys(cfg, twoThreadLoadsStores());
    IntervalStats s = sys.runAndMeasure(20'000, 50'000);
    EXPECT_GT(s.dataUtil, 0.5); // both benchmarks hammer the arrays
    EXPECT_LE(s.dataUtil, 1.0);
    EXPECT_GT(s.tagUtil, 0.0);
    EXPECT_LE(s.tagUtil, 1.0);
    EXPECT_GT(s.busUtil, 0.0);
}

TEST(CmpSystem, SnapshotDeltasMatchTotals)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    CmpSystem sys(cfg, twoThreadLoadsStores());
    SystemSnapshot a = sys.snapshot();
    sys.run(10'000);
    SystemSnapshot b = sys.snapshot();
    IntervalStats s = CmpSystem::interval(a, b);
    EXPECT_EQ(s.cycles, 10'000u);
    EXPECT_EQ(s.instrs.at(0), sys.cpu(0).instrsRetired());
    EXPECT_EQ(s.instrs.at(1), sys.cpu(1).instrsRetired());
}

TEST(CmpSystem, DeterministicAcrossRuns)
{
    auto run_once = [] {
        SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
        CmpSystem sys(cfg, twoThreadLoadsStores());
        sys.run(30'000);
        return std::make_pair(sys.cpu(0).instrsRetired(),
                              sys.cpu(1).instrsRetired());
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CmpSystem, WorkloadCountMustMatchProcessors)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    EXPECT_EXIT((CmpSystem{cfg, std::move(wl)}),
                testing::ExitedWithCode(1), "workloads");
}

TEST(CmpSystem, FourThreadStoresAllMakeProgress)
{
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Fcfs);
    std::vector<std::unique_ptr<Workload>> wl;
    for (unsigned t = 0; t < 4; ++t) {
        wl.push_back(std::make_unique<StoresBenchmark>(
            (1ull << 32) * t));
    }
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(20'000, 50'000);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_GT(s.ipc.at(t), 0.01) << "thread " << t;
}

} // namespace
} // namespace vpc
