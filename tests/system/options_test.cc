/**
 * @file
 * Unit tests for the vpcsim command-line option parser.
 */

#include <gtest/gtest.h>

#include "system/options.hh"

namespace vpc
{
namespace
{

std::optional<SimOptions>
parse(std::initializer_list<const char *> args)
{
    std::vector<std::string> v(args.begin(), args.end());
    std::string err;
    return parseSimOptions(v, err);
}

TEST(SimOptions, MinimalInvocation)
{
    auto o = parse({"--workload=loads"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->config.numProcessors, 1u);
    EXPECT_EQ(o->workloadSpecs[0], "loads");
    EXPECT_DOUBLE_EQ(o->config.shares[0].phi, 1.0);
    EXPECT_EQ(o->config.arbiterPolicy, ArbiterPolicy::Fcfs);
}

TEST(SimOptions, FullInvocation)
{
    auto o = parse({"--workload=loads,stores,mcf,idle",
                    "--arbiter=vpc", "--capacity=occupancy",
                    "--phi=0.4,0.3,0.2,0.1", "--beta=0.25,0.25,0.25,"
                    "0.25", "--banks=4", "--warmup=1000",
                    "--cycles=2000", "--seed=9", "--prefetch",
                    "--shared-memory", "--stats"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->config.numProcessors, 4u);
    EXPECT_EQ(o->config.arbiterPolicy, ArbiterPolicy::Vpc);
    EXPECT_EQ(o->config.capacityPolicy,
              CapacityPolicy::GlobalOccupancy);
    EXPECT_DOUBLE_EQ(o->config.shares[2].phi, 0.2);
    EXPECT_EQ(o->config.l2.banks, 4u);
    EXPECT_EQ(o->warmup, 1000u);
    EXPECT_EQ(o->measure, 2000u);
    EXPECT_EQ(o->seed, 9u);
    EXPECT_TRUE(o->config.l1.prefetch.enable);
    EXPECT_TRUE(o->config.mem.sharedChannel);
    // VPC cache arbiters imply the FQ memory scheduler.
    EXPECT_EQ(o->config.mem.schedulerPolicy, ArbiterPolicy::Vpc);
    EXPECT_TRUE(o->dumpStats);
}

TEST(SimOptions, DefaultSharesAreEqual)
{
    auto o = parse({"--workload=loads,stores,idle,idle"});
    ASSERT_TRUE(o);
    for (const QosShare &s : o->config.shares) {
        EXPECT_DOUBLE_EQ(s.phi, 0.25);
        EXPECT_DOUBLE_EQ(s.beta, 0.25);
    }
}

TEST(SimOptions, ErrorsAreReported)
{
    std::string err;
    std::vector<std::string> v;

    v = {"--workload=loads", "--arbiter=bogus"};
    EXPECT_FALSE(parseSimOptions(v, err));
    EXPECT_NE(err.find("unknown arbiter"), std::string::npos);

    v = {"--workload=loads", "--phi=0.5,0.5"};
    EXPECT_FALSE(parseSimOptions(v, err));
    EXPECT_NE(err.find("entries"), std::string::npos);

    v = {"--workload=loads,stores", "--phi=0.9,0.9"};
    EXPECT_FALSE(parseSimOptions(v, err));
    EXPECT_NE(err.find("over-allocated"), std::string::npos);

    v = {"--workload=loads", "--cycles=xyz"};
    EXPECT_FALSE(parseSimOptions(v, err));
    EXPECT_NE(err.find("bad integer"), std::string::npos);

    v = {"--nonsense"};
    EXPECT_FALSE(parseSimOptions(v, err));
    EXPECT_NE(err.find("unknown option"), std::string::npos);

    v = {};
    EXPECT_FALSE(parseSimOptions(v, err));
    EXPECT_NE(err.find("--workload"), std::string::npos);
}

TEST(SimOptions, HelpProducesUsage)
{
    std::string err;
    std::vector<std::string> v = {"--help"};
    EXPECT_FALSE(parseSimOptions(v, err));
    EXPECT_NE(err.find("vpcsim"), std::string::npos);
    EXPECT_NE(err.find("--arbiter"), std::string::npos);
}

TEST(SimOptions, WorkloadFactorySpecs)
{
    std::string err;
    EXPECT_NE(makeWorkloadFromSpec("loads", 0, 1, err), nullptr);
    EXPECT_NE(makeWorkloadFromSpec("stores", 0, 1, err), nullptr);
    EXPECT_NE(makeWorkloadFromSpec("idle", 0, 1, err), nullptr);
    auto spec = makeWorkloadFromSpec("swim", 0, 1, err);
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->name(), "swim");
    EXPECT_EQ(makeWorkloadFromSpec("nosuch", 0, 1, err), nullptr);
    EXPECT_NE(err.find("unknown workload"), std::string::npos);
}

TEST(SimOptions, BuildWorkloadsMatchesSpecs)
{
    auto o = parse({"--workload=loads,gzip"});
    ASSERT_TRUE(o);
    auto wl = o->buildWorkloads();
    ASSERT_EQ(wl.size(), 2u);
    EXPECT_EQ(wl[0]->name(), "Loads");
    EXPECT_EQ(wl[1]->name(), "gzip");
}

} // namespace
} // namespace vpc
