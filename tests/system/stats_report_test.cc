/**
 * @file
 * Unit tests for the hierarchical statistics dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/experiment.hh"
#include "system/stats_report.hh"
#include "workload/microbench.hh"

namespace vpc
{
namespace
{

TEST(StatsReport, ContainsEveryComponentSection)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    CmpSystem sys(cfg, std::move(wl));
    sys.run(20'000);

    std::ostringstream os;
    dumpStats(sys, os, sys.now());
    std::string out = os.str();

    for (const char *needle :
         {"sim.cycles", "cpu0.ipc", "cpu1.instrs", "l1d0.misses",
          "l1d1.hits", "l2.bank0.data.util", "l2.bank1.tag.accesses",
          "l2.bank0.thread1.writes", "l2.bank1.thread0.sgbStores",
          "mem.thread0.readLatencyMean", "mem.thread1.writes"}) {
        EXPECT_NE(out.find(needle), std::string::npos)
            << "missing stat " << needle;
    }
}

TEST(StatsReport, ValuesReflectActivity)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    CmpSystem sys(cfg, std::move(wl));
    sys.run(20'000);

    std::ostringstream os;
    dumpStats(sys, os, sys.now());
    std::string out = os.str();

    // The Loads benchmark misses the L1 constantly; the dump must
    // show non-zero L1 misses.
    std::size_t pos = out.find("l1d0.misses");
    ASSERT_NE(pos, std::string::npos);
    std::istringstream field(out.substr(pos + 44));
    std::uint64_t misses = 0;
    field >> misses;
    EXPECT_GT(misses, 100u);
}

TEST(StatsReport, EveryLineHasDescription)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::Vpc);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    CmpSystem sys(cfg, std::move(wl));
    sys.run(1'000);

    std::ostringstream os;
    dumpStats(sys, os, sys.now());
    std::istringstream lines(os.str());
    std::string line;
    unsigned stat_lines = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("----------", 0) == 0)
            continue;
        EXPECT_NE(line.find('#'), std::string::npos) << line;
        ++stat_lines;
    }
    EXPECT_GT(stat_lines, 20u);
}

} // namespace
} // namespace vpc
