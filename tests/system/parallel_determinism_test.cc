/**
 * @file
 * Differential tests of the shard-parallel kernel: for each
 * configuration, runs at --threads=1 (serial kernel) and
 * --threads=2/4/8 (sharded kernel, varying worker counts) must produce
 * bit-identical model statistics and state dumps, and identical
 * eventsFired / ticksExecuted totals.  This is the determinism
 * contract from DESIGN.md §5d: thread count is a throughput knob, not
 * a modeling knob.
 *
 * Deliberately NOT compared: cyclesExecuted, cyclesSkipped, epochs,
 * barrierStalls.  Those are kernel-diagnostic counters — the sharded
 * kernel sums them per shard, so they legitimately differ from the
 * serial kernel and between worker counts (global-quiescence jumps
 * land at scheduling-dependent moments).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/options.hh"
#include "system/stats_report.hh"
#include "workload/microbench.hh"
#include "workload/spec2000.hh"

namespace vpc
{
namespace
{

constexpr Cycle kWarmup = 10'000;
constexpr Cycle kMeasure = 40'000;

struct RunDump
{
    std::string stats;
    std::string state;
    Cycle end;
    KernelStats kernel;
};

/** Build, run, and dump one system with the given kernel thread count. */
RunDump
runOnce(SystemConfig cfg,
        std::vector<std::unique_ptr<Workload>> workloads,
        unsigned threads)
{
    cfg.kernelThreads = threads;
    CmpSystem sys(cfg, std::move(workloads));
    sys.run(kWarmup + kMeasure);
    RunDump d;
    std::ostringstream os;
    dumpStats(sys, os, sys.now());
    d.stats = os.str();
    d.state = sys.dumpState();
    d.end = sys.now();
    d.kernel = sys.kernelStats();
    return d;
}

std::vector<std::unique_ptr<Workload>>
specMix(const std::vector<std::string> &names)
{
    std::vector<std::unique_ptr<Workload>> wl;
    for (unsigned t = 0; t < names.size(); ++t)
        wl.push_back(makeSpec2000(names[t], (1ull << 40) * t, t + 1));
    return wl;
}

void
expectDeterministic(const SystemConfig &cfg,
                    const std::vector<std::string> &spec_names,
                    const char *label)
{
    RunDump serial = runOnce(cfg, specMix(spec_names), 1);
    for (unsigned threads : {2u, 4u, 8u}) {
        RunDump par = runOnce(cfg, specMix(spec_names), threads);
        SCOPED_TRACE(std::string(label) + " threads=" +
                     std::to_string(threads));
        EXPECT_EQ(par.end, serial.end);
        EXPECT_EQ(par.stats, serial.stats);
        EXPECT_EQ(par.state, serial.state);
        // Identical model activity: every event is scheduled by model
        // code and every component tick is observable, so both totals
        // must match the serial kernel exactly.
        EXPECT_EQ(par.kernel.eventsFired.value(),
                  serial.kernel.eventsFired.value());
        EXPECT_EQ(par.kernel.ticksExecuted.value(),
                  serial.kernel.ticksExecuted.value());
    }
}

TEST(ParallelDeterminism, HeadlineMixUnderVpc)
{
    expectDeterministic(makeBaselineConfig(4, ArbiterPolicy::Vpc),
                        {"art", "vpr", "mesa", "crafty"}, "vpc-4");
}

TEST(ParallelDeterminism, HeadlineMixUnderFcfs)
{
    expectDeterministic(makeBaselineConfig(4, ArbiterPolicy::Fcfs),
                        {"art", "mcf", "equake", "swim"}, "fcfs-4");
}

TEST(ParallelDeterminism, TwoThreadRowFcfs)
{
    expectDeterministic(makeBaselineConfig(2, ArbiterPolicy::RowFcfs),
                        {"mesa", "mcf"}, "row-2");
}

TEST(ParallelDeterminism, SharedMemoryChannel)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.mem.sharedChannel = true;
    expectDeterministic(cfg, {"art", "swim"}, "shared-mem-2");
}

TEST(ParallelDeterminism, PrefetchersEnabled)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.l1.prefetch.enable = true;
    expectDeterministic(cfg, {"swim", "mgrid"}, "prefetch-2");
}

TEST(ParallelDeterminism, UnequalShares)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.shares = {QosShare{0.75, 0.75}, QosShare{0.25, 0.25}};
    cfg.validate();
    expectDeterministic(cfg, {"art", "mcf"}, "shares-75-25");
}

TEST(ParallelDeterminism, MicrobenchLoadsStores)
{
    // Stores hammer the store-gather buffers, which is the one piece
    // of uncore state the cores observe with zero lookahead — the
    // published-occupancy decomposition is only exercised here and in
    // store-heavy SPEC mixes.
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    auto build = [] {
        std::vector<std::unique_ptr<Workload>> wl;
        wl.push_back(std::make_unique<LoadsBenchmark>(0));
        wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
        return wl;
    };
    SystemConfig base_cfg = cfg;
    RunDump serial = runOnce(base_cfg, build(), 1);
    for (unsigned threads : {2u, 4u, 8u}) {
        RunDump par = runOnce(cfg, build(), threads);
        SCOPED_TRACE("micro threads=" + std::to_string(threads));
        EXPECT_EQ(par.stats, serial.stats);
        EXPECT_EQ(par.state, serial.state);
        EXPECT_EQ(par.kernel.eventsFired.value(),
                  serial.kernel.eventsFired.value());
        EXPECT_EQ(par.kernel.ticksExecuted.value(),
                  serial.kernel.ticksExecuted.value());
    }
}

TEST(ParallelDeterminism, ProfilerIsObserveOnly)
{
    // --profile must never change a model statistic: the profiler
    // only reads the host clock and bumps host-side counters.  Run
    // the same mix unprofiled at --threads=1 and profiled at every
    // worker count; all model output must stay bit-identical.
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    RunDump plain = runOnce(cfg, specMix({"art", "vpr", "mesa",
                                          "crafty"}), 1);
    SystemConfig prof_cfg = cfg;
    prof_cfg.profile = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        RunDump prof = runOnce(prof_cfg, specMix({"art", "vpr", "mesa",
                                                  "crafty"}), threads);
        SCOPED_TRACE("profiled threads=" + std::to_string(threads));
        EXPECT_EQ(prof.end, plain.end);
        EXPECT_EQ(prof.stats, plain.stats);
        EXPECT_EQ(prof.state, plain.state);
        EXPECT_EQ(prof.kernel.eventsFired.value(),
                  plain.kernel.eventsFired.value());
        EXPECT_EQ(prof.kernel.ticksExecuted.value(),
                  plain.kernel.ticksExecuted.value());
    }
}

TEST(ParallelDeterminism, ProfilerAccountsAllEventTime)
{
    // Attribution completeness: every executed event is owned by a
    // named component (fills/arrivals bill to their semantic senders
    // on the sharded kernel), so the unattributed account stays empty
    // and event counts reconcile with the kernel's eventsFired.
    for (unsigned threads : {1u, 4u}) {
        SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
        cfg.profile = true;
        cfg.kernelThreads = threads;
        CmpSystem sys(cfg, specMix({"art", "vpr", "mesa", "crafty"}));
        sys.run(kWarmup + kMeasure);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ASSERT_TRUE(sys.profiling());
        Profiler merged = sys.mergedProfile();
        // Account 0 is "(unattributed)"; nothing may land there.
        EXPECT_EQ(merged.entries().front().eventCount, 0u);
        EXPECT_EQ(merged.attributedEventNs(), merged.totalEventNs());
        std::uint64_t events = 0, ticks = 0;
        for (const Profiler::Entry &e : merged.entries()) {
            events += e.eventCount;
            ticks += e.tickCount;
        }
        EXPECT_EQ(events, sys.kernelStats().eventsFired.value());
        EXPECT_EQ(ticks, sys.kernelStats().ticksExecuted.value());
    }
}

TEST(ParallelSmoke, FourWorkersShortRun)
{
    // Minimal --threads=4 exercise kept deliberately short: under the
    // tsan preset this is the cheapest full-machine pass through the
    // sharded kernel's ring/frontier/global-jump machinery.
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    cfg.kernelThreads = 4;
    CmpSystem sys(cfg, specMix({"art", "mcf", "swim", "mesa"}));
    sys.run(8'000);
    EXPECT_EQ(sys.now(), 8'000u);
    EXPECT_GT(sys.kernelStats().eventsFired.value(), 0u);
}

/** Scoped VPC_KERNEL_FALLBACK override (restored on destruction). */
class ScopedFallbackEnv
{
  public:
    explicit ScopedFallbackEnv(const char *mode)
    {
        const char *old = ::getenv("VPC_KERNEL_FALLBACK");
        if (old != nullptr) {
            had_ = true;
            old_ = old;
        }
        ::setenv("VPC_KERNEL_FALLBACK", mode, 1);
    }
    ~ScopedFallbackEnv()
    {
        if (had_)
            ::setenv("VPC_KERNEL_FALLBACK", old_.c_str(), 1);
        else
            ::unsetenv("VPC_KERNEL_FALLBACK");
    }

  private:
    bool had_ = false;
    std::string old_;
};

TEST(ParallelDeterminism, FallbackModesAreModelInvisible)
{
    // The adaptive serial fallback (DESIGN.md 5h) is a scheduling
    // decision: whether the run stays collapsed on one lane, splits
    // across workers, or oscillates must never reach a model
    // statistic.  Pin each mode via the environment knob and compare
    // a 4-worker run against the serial kernel.
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    const std::vector<std::string> mix = {"art", "vpr", "mesa",
                                          "crafty"};
    RunDump serial = runOnce(cfg, specMix(mix), 1);
    for (const char *mode : {"serial", "parallel", "adaptive"}) {
        ScopedFallbackEnv env(mode);
        RunDump par = runOnce(cfg, specMix(mix), 4);
        SCOPED_TRACE(std::string("fallback=") + mode);
        EXPECT_EQ(par.end, serial.end);
        EXPECT_EQ(par.stats, serial.stats);
        EXPECT_EQ(par.state, serial.state);
        EXPECT_EQ(par.kernel.eventsFired.value(),
                  serial.kernel.eventsFired.value());
        EXPECT_EQ(par.kernel.ticksExecuted.value(),
                  serial.kernel.ticksExecuted.value());
    }
}

/** Shorter-run variant of expectDeterministic for the big machines. */
void
expectDeterministicLen(const SystemConfig &cfg, Cycle run_len,
                       const char *label)
{
    // Cycle the scaled machine's threads through a heterogeneous mix.
    const char *const names[] = {"art",  "mcf",  "mesa", "crafty",
                                 "gzip", "swim", "vpr",  "gcc"};
    auto build = [&] {
        std::vector<std::unique_ptr<Workload>> wl;
        for (unsigned t = 0; t < cfg.numProcessors; ++t)
            wl.push_back(makeSpec2000(names[t % 8], (1ull << 40) * t,
                                      t + 1));
        return wl;
    };
    auto once = [&](unsigned threads) {
        SystemConfig c = cfg;
        c.kernelThreads = threads;
        CmpSystem sys(c, build());
        sys.run(run_len);
        RunDump d;
        std::ostringstream os;
        dumpStats(sys, os, sys.now());
        d.stats = os.str();
        d.state = sys.dumpState();
        d.end = sys.now();
        d.kernel = sys.kernelStats();
        return d;
    };
    RunDump serial = once(1);
    for (unsigned threads : {2u, 4u, 8u}) {
        RunDump par = once(threads);
        SCOPED_TRACE(std::string(label) + " threads=" +
                     std::to_string(threads));
        EXPECT_EQ(par.end, serial.end);
        EXPECT_EQ(par.stats, serial.stats);
        EXPECT_EQ(par.state, serial.state);
        EXPECT_EQ(par.kernel.eventsFired.value(),
                  serial.kernel.eventsFired.value());
        EXPECT_EQ(par.kernel.ticksExecuted.value(),
                  serial.kernel.ticksExecuted.value());
    }
}

TEST(ParallelDeterminism, ScaledCmp16)
{
    expectDeterministicLen(
        makeScaledCmpConfig(16, ArbiterPolicy::Vpc), 16'000,
        "scaled-16");
}

TEST(ParallelDeterminism, ScaledCmp32)
{
    expectDeterministicLen(
        makeScaledCmpConfig(32, ArbiterPolicy::Vpc), 10'000,
        "scaled-32");
}

TEST(ParallelDeterminism, RepeatedRunsAreStable)
{
    // Same thread count twice: the sharded kernel must also be
    // self-deterministic, not merely serial-equivalent on average.
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    RunDump a = runOnce(cfg, specMix({"art", "mcf", "swim", "mesa"}), 4);
    RunDump b = runOnce(cfg, specMix({"art", "mcf", "swim", "mesa"}), 4);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.kernel.eventsFired.value(), b.kernel.eventsFired.value());
}

} // namespace
} // namespace vpc
