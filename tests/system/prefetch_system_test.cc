/**
 * @file
 * Full-system tests of VPC-supported prefetching: end-to-end flow
 * through L1 -> crossbar -> bank -> memory -> fill, QoS preservation,
 * and demand-over-prefetch ordering.
 */

#include <gtest/gtest.h>

#include <memory>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/microbench.hh"
#include "workload/synthetic.hh"

namespace vpc
{
namespace
{

/** Dependence-serialized streaming loads: the prefetchable case. */
SyntheticParams
depStream()
{
    SyntheticParams p;
    p.name = "depstream";
    p.memFrac = 0.4;
    p.storeFrac = 0.0;
    p.workingSetBytes = 64ull << 20;
    p.hotFrac = 0.0;
    p.depFrac = 1.0;
    p.streamFrac = 1.0;
    return p;
}

IntervalStats
runStream(bool prefetch, unsigned procs = 1)
{
    SystemConfig cfg = makeBaselineConfig(procs,
                                          ArbiterPolicy::Vpc);
    cfg.l1.prefetch.enable = prefetch;
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<SyntheticWorkload>(depStream(), 0,
                                                     1));
    for (unsigned t = 1; t < procs; ++t) {
        wl.push_back(std::make_unique<StoresBenchmark>(
            (1ull << 40) * t));
    }
    CmpSystem sys(cfg, std::move(wl));
    return sys.runAndMeasure(30'000, 80'000);
}

TEST(PrefetchSystem, SpeedsUpDependentStreaming)
{
    double off = runStream(false).ipc.at(0);
    double on = runStream(true).ipc.at(0);
    EXPECT_GT(on, 1.10 * off)
        << "prefetching should hide serialized miss latency";
}

TEST(PrefetchSystem, PrefetchTrafficReachesTheL2)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::Vpc);
    cfg.l1.prefetch.enable = true;
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<SyntheticWorkload>(depStream(), 0,
                                                     1));
    CmpSystem sys(cfg, std::move(wl));
    sys.run(50'000);
    EXPECT_GT(sys.l1(0).prefetchesIssued(), 100u);
    // Every prefetch is an L2 read on top of the demand stream.
    EXPECT_GT(sys.l2().readCount(0),
              sys.l1(0).prefetchesIssued());
}

TEST(PrefetchSystem, NeighborsQosGuaranteeHoldsUnderPrefetching)
{
    // A store flood shares the cache with the prefetching streamer at
    // 50/50.  Prefetching consumes the streamer's *own* share, so the
    // neighbor may lose some of the excess it previously enjoyed --
    // but it must never drop below its own phi=0.5 target.  That is
    // the QoS contract (excess is a bonus, not a guarantee).
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    auto run = [&cfg](bool pf) {
        SystemConfig c = cfg;
        PrefetchConfig p;
        p.enable = pf;
        c.l1PrefetchPerThread = {p, PrefetchConfig{}};
        std::vector<std::unique_ptr<Workload>> wl;
        wl.push_back(std::make_unique<SyntheticWorkload>(depStream(),
                                                         0, 1));
        wl.push_back(std::make_unique<StoresBenchmark>(1ull << 40));
        CmpSystem sys(c, std::move(wl));
        return sys.runAndMeasure(30'000, 80'000).ipc.at(1);
    };
    StoresBenchmark stores(1ull << 40);
    double target = targetIpc(cfg, stores, 0.5, 0.5,
                              RunLengths{30'000, 80'000});
    EXPECT_GE(run(false), 0.95 * target);
    EXPECT_GE(run(true), 0.95 * target);
}

TEST(PrefetchSystem, DisabledByDefaultPerTable1)
{
    SystemConfig cfg;
    EXPECT_FALSE(cfg.l1.prefetch.enable);
}

} // namespace
} // namespace vpc
