/**
 * @file
 * Full-system tests of the shared-channel (VPM memory) mode.
 */

#include <gtest/gtest.h>

#include <memory>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/synthetic.hh"

namespace vpc
{
namespace
{

SyntheticParams
chaser()
{
    SyntheticParams p;
    p.name = "chaser";
    p.memFrac = 0.25;
    p.storeFrac = 0.0;
    p.workingSetBytes = 64ull << 20;
    p.hotFrac = 0.5;
    p.depFrac = 1.0;
    p.streamFrac = 0.0;
    return p;
}

SyntheticParams
hog()
{
    SyntheticParams p;
    p.name = "memhog";
    p.memFrac = 0.6;
    p.storeFrac = 0.0;
    p.workingSetBytes = 64ull << 20;
    p.hotFrac = 0.0;
    p.depFrac = 0.0;
    p.streamFrac = 1.0;
    return p;
}

IntervalStats
runShared(ArbiterPolicy mem_policy)
{
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    cfg.mem.sharedChannel = true;
    cfg.mem.schedulerPolicy = mem_policy;
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<SyntheticWorkload>(chaser(), 0, 1));
    for (unsigned t = 1; t < 4; ++t) {
        wl.push_back(std::make_unique<SyntheticWorkload>(
            hog(), (1ull << 40) * t, t + 1));
    }
    CmpSystem sys(cfg, std::move(wl));
    return sys.runAndMeasure(50'000, 120'000);
}

TEST(VpmMemorySystem, SharedChannelRunsEndToEnd)
{
    IntervalStats s = runShared(ArbiterPolicy::Fcfs);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_GT(s.ipc.at(t), 0.0) << "thread " << t;
}

TEST(VpmMemorySystem, FqSchedulingShieldsTheLatencyBoundVictim)
{
    double fcfs = runShared(ArbiterPolicy::Fcfs).ipc.at(0);
    double fq = runShared(ArbiterPolicy::Vpc).ipc.at(0);
    EXPECT_GT(fq, 2.0 * fcfs)
        << "FQ memory scheduling must shield the pointer chaser";
}

TEST(VpmMemorySystem, FqStillServesTheHogs)
{
    // Work conservation at the memory channel: the hogs keep most of
    // the bandwidth the chaser cannot use.
    IntervalStats s = runShared(ArbiterPolicy::Vpc);
    double hog_ipc = s.ipc.at(1) + s.ipc.at(2) + s.ipc.at(3);
    EXPECT_GT(hog_ipc, 0.05);
}

TEST(VpmMemorySystem, DeterministicAcrossRuns)
{
    IntervalStats a = runShared(ArbiterPolicy::Vpc);
    IntervalStats b = runShared(ArbiterPolicy::Vpc);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_DOUBLE_EQ(a.ipc.at(t), b.ipc.at(t));
}

} // namespace
} // namespace vpc
