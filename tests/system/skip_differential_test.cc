/**
 * @file
 * Differential tests of the quiescence-skipping kernel on the full
 * machine: for each figure-bench-style configuration, a skipping run
 * and a --no-skip (naive loop) run must produce bit-identical model
 * statistics and state dumps.  This is the proof obligation behind
 * every component's nextWork() hint — any hint that lets tick() skip
 * an observable cycle shows up here as a stats diff.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/options.hh"
#include "system/stats_report.hh"
#include "workload/microbench.hh"
#include "workload/spec2000.hh"

namespace vpc
{
namespace
{

constexpr Cycle kWarmup = 20'000;
constexpr Cycle kMeasure = 80'000;

struct RunDump
{
    std::string stats;
    std::string state;
    Cycle end;
    KernelStats kernel;
};

/** Build, run, and dump one system with the given kernel mode. */
RunDump
runOnce(SystemConfig cfg,
        std::vector<std::unique_ptr<Workload>> workloads, bool skip)
{
    cfg.kernelSkip = skip;
    CmpSystem sys(cfg, std::move(workloads));
    sys.run(kWarmup + kMeasure);
    RunDump d;
    std::ostringstream os;
    dumpStats(sys, os, sys.now());
    d.stats = os.str();
    d.state = sys.dumpState();
    d.end = sys.now();
    d.kernel = sys.kernelStats();
    return d;
}

std::vector<std::unique_ptr<Workload>>
specMix(const std::vector<std::string> &names)
{
    std::vector<std::unique_ptr<Workload>> wl;
    for (unsigned t = 0; t < names.size(); ++t)
        wl.push_back(makeSpec2000(names[t], (1ull << 40) * t, t + 1));
    return wl;
}

void
expectIdentical(const SystemConfig &cfg,
                const std::vector<std::string> &spec_names,
                const char *label)
{
    RunDump skip = runOnce(cfg, specMix(spec_names), true);
    RunDump naive = runOnce(cfg, specMix(spec_names), false);
    EXPECT_EQ(skip.end, naive.end) << label;
    EXPECT_EQ(skip.stats, naive.stats) << label;
    EXPECT_EQ(skip.state, naive.state) << label;
    // The naive run by definition skips nothing and ticks everything.
    EXPECT_EQ(naive.kernel.cyclesSkipped.value(), 0u) << label;
    EXPECT_EQ(skip.kernel.cyclesExecuted.value() +
                  skip.kernel.cyclesSkipped.value(),
              naive.kernel.cyclesExecuted.value())
        << label;
    // Identical model activity implies identical event counts: every
    // event is scheduled by model code, which ran identically.
    EXPECT_EQ(skip.kernel.eventsFired.value(),
              naive.kernel.eventsFired.value())
        << label;
}

TEST(SkipDifferential, HeadlineMixUnderVpc)
{
    expectIdentical(makeBaselineConfig(4, ArbiterPolicy::Vpc),
                    {"art", "vpr", "mesa", "crafty"}, "vpc-4");
}

TEST(SkipDifferential, HeadlineMixUnderFcfs)
{
    expectIdentical(makeBaselineConfig(4, ArbiterPolicy::Fcfs),
                    {"art", "mcf", "equake", "swim"}, "fcfs-4");
}

TEST(SkipDifferential, TwoThreadRowFcfs)
{
    expectIdentical(makeBaselineConfig(2, ArbiterPolicy::RowFcfs),
                    {"mesa", "mcf"}, "row-2");
}

TEST(SkipDifferential, RoundRobinArbiter)
{
    expectIdentical(makeBaselineConfig(2, ArbiterPolicy::RoundRobin),
                    {"gzip", "twolf"}, "rr-2");
}

TEST(SkipDifferential, UniprocessorPrivateMachine)
{
    // The experiment harness's target-IPC machine: a single thread on
    // a scaled-down private configuration (the fig benches' other
    // half).  Long memory stalls make this the deepest-skipping case.
    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    SystemConfig cfg = makePrivateConfig(base, 0.25, 0.25);
    expectIdentical(cfg, {"mcf"}, "private-1");
}

TEST(SkipDifferential, SharedMemoryChannel)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.mem.sharedChannel = true;
    expectIdentical(cfg, {"art", "swim"}, "shared-mem-2");
}

TEST(SkipDifferential, PrefetchersEnabled)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.l1.prefetch.enable = true;
    expectIdentical(cfg, {"swim", "mgrid"}, "prefetch-2");
}

TEST(SkipDifferential, UnequalShares)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.shares = {QosShare{0.75, 0.75}, QosShare{0.25, 0.25}};
    cfg.validate();
    expectIdentical(cfg, {"art", "mcf"}, "shares-75-25");
}

TEST(SkipDifferential, MicrobenchLoadsStores)
{
    // Figure 8's workload pair exercises the store write-through path
    // and the store-gather buffers harder than any SPEC stand-in.
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    auto build = [] {
        std::vector<std::unique_ptr<Workload>> wl;
        wl.push_back(std::make_unique<LoadsBenchmark>(0));
        wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
        return wl;
    };
    SystemConfig skip_cfg = cfg;
    RunDump skip = runOnce(skip_cfg, build(), true);
    RunDump naive = runOnce(cfg, build(), false);
    EXPECT_EQ(skip.stats, naive.stats);
    EXPECT_EQ(skip.state, naive.state);
}

TEST(SkipDifferential, SkippingActuallySkips)
{
    // Sanity check that the machinery is engaged at all: a private
    // uniprocessor running mcf spends most cycles stalled on DRAM, so
    // a meaningful fraction must be fast-forwarded.
    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    SystemConfig cfg = makePrivateConfig(base, 0.25, 0.25);
    RunDump skip = runOnce(cfg, specMix({"mcf"}), true);
    EXPECT_GT(skip.kernel.cyclesSkipped.value(), 0u);
}

} // namespace
} // namespace vpc
