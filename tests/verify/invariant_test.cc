/**
 * @file
 * Death tests proving each invariant auditor fires under its matching
 * injected fault, and that a clean machine audits clean.
 *
 * Structure: one unit-level test per auditor against a standalone
 * component perturbed through its sanctioned fault hook, then
 * system-level tests exercising the full CmpSystem wiring (audit hook
 * each cycle, fault registration, panic state dump).
 */

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "arbiter/fcfs_arbiter.hh"
#include "arbiter/round_robin_arbiter.hh"
#include "arbiter/row_fcfs_arbiter.hh"
#include "arbiter/vpc_arbiter.hh"
#include "cache/cache_array.hh"
#include "cache/replacement.hh"
#include "sim/event_queue.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "verify/auditors.hh"
#include "workload/microbench.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(ThreadId t, SeqNum seq, bool write = false)
{
    ArbRequest r;
    r.thread = t;
    r.seq = seq;
    r.isWrite = write;
    return r;
}

// --------------------------------------------------------------
// VpcArbiterAuditor
// --------------------------------------------------------------

TEST(VpcArbiterAuditorDeath, CatchesVirtualTimeRegression)
{
    VpcArbiter arb(2, 4, 2, {0.5, 0.5});
    VpcArbiterAuditor aud(arb, "t");
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(1, 2), 0);
    ASSERT_TRUE(arb.select(0));
    aud.check(10); // records R.S_i > 0 for the granted thread
    arb.faultCorruptVirtualTime(0, 1e6);
    arb.faultCorruptVirtualTime(1, 1e6);
    EXPECT_DEATH(aud.check(11), "virtual time regressed");
}

TEST(VpcArbiterAuditorDeath, CatchesMissedEquation6Reset)
{
    // Wall-clock mode: an idle thread's R.S_i is floored to the
    // cycle counter when it becomes busy (Equation 6), so after an
    // idle->pending transition it can never lie before the previous
    // audit's cycle.
    VpcArbiter arb(2, 4, 2, {0.5, 0.5});
    ASSERT_FALSE(arb.vpcOptions().virtualClock);
    VpcArbiterAuditor aud(arb, "t");
    aud.check(100); // thread 0 idle here
    arb.enqueue(makeReq(0, 1), 150); // Equation 6 floors R.S_0 to 150
    arb.faultCorruptVirtualTime(0, 100.0); // ...rewound to 50
    EXPECT_DEATH(aud.check(160), "Equation 6");
}

TEST(VpcArbiterAuditorDeath, CatchesUnboundedVirtualClockLag)
{
    // Virtual-clock mode: EDF grants guarantee the system clock
    // never runs more than one maximal virtual service past a
    // backlogged thread's R.S_i.
    VpcArbiterOptions opts;
    opts.virtualClock = true;
    VpcArbiter arb(2, 4, 2, {0.5, 0.5}, opts);
    VpcArbiterAuditor aud(arb, "t");
    // Thread 1 alone advances the clock far ahead.
    Cycle now = 0;
    for (SeqNum s = 1; s <= 30; ++s) {
        arb.enqueue(makeReq(1, s), now);
        ASSERT_TRUE(arb.select(now));
        now += 4;
    }
    // Thread 0 becomes busy: Equation 6 floors R.S_0 to the clock,
    // within the lag bound -- until the register is rewound.
    arb.enqueue(makeReq(0, 31), now);
    arb.faultCorruptVirtualTime(0, 1e6);
    aud.check(now); // first check only records state
    EXPECT_DEATH(aud.check(now + 1), "past backlogged thread");
}

TEST(VpcArbiterAuditor, CleanArbiterAuditsClean)
{
    VpcArbiter arb(2, 4, 2, {0.5, 0.5});
    VpcArbiterAuditor aud(arb, "t");
    Cycle now = 0;
    for (SeqNum s = 1; s <= 50; ++s) {
        arb.enqueue(makeReq(s % 2, s, s % 3 == 0), now);
        arb.select(now);
        aud.check(now);
        now += 4;
    }
    arb.select(now);
    aud.check(now);
}

// --------------------------------------------------------------
// ArbiterConservationAuditor
// --------------------------------------------------------------

template <typename Arb>
void
expectConservationCatchesDrop()
{
    Arb arb(2);
    ArbiterConservationAuditor aud(arb, "t");
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(0, 2, true), 0);
    arb.enqueue(makeReq(1, 3), 0);
    ASSERT_TRUE(arb.select(0));
    aud.check(1); // admitted == granted + pending on every thread
    ASSERT_TRUE(arb.faultDropOldest(0) || arb.faultDropOldest(1));
    EXPECT_DEATH(aud.check(2), "not conserved");
}

TEST(ConservationAuditorDeath, CatchesDropInFcfs)
{
    expectConservationCatchesDrop<FcfsArbiter>();
}

TEST(ConservationAuditorDeath, CatchesDropInRowFcfs)
{
    expectConservationCatchesDrop<RowFcfsArbiter>();
}

TEST(ConservationAuditorDeath, CatchesDropInRoundRobin)
{
    expectConservationCatchesDrop<RoundRobinArbiter>();
}

TEST(ConservationAuditorDeath, CatchesDropInVpc)
{
    VpcArbiter arb(2, 4, 2, {0.5, 0.5});
    ArbiterConservationAuditor aud(arb, "t");
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(0, 2), 0);
    aud.check(1);
    ASSERT_TRUE(arb.faultDropOldest(0));
    EXPECT_DEATH(aud.check(2), "not conserved");
}

// --------------------------------------------------------------
// CapacityAuditor + victim audit
// --------------------------------------------------------------

TEST(CapacityAuditorDeath, CatchesOwnershipFlip)
{
    CacheArray arr(4, 2, 64, std::make_unique<LruReplacement>());
    arr.insert(0, 0, false);
    arr.insert(4 * 64, 1, false);
    CapacityAuditor aud(arr, 2, "arr", /*walk_period=*/1);
    aud.check(0); // tracked counters match the array walk
    ASSERT_TRUE(arr.faultFlipOwner(1));
    EXPECT_DEATH(aud.check(1), "drifted");
}

TEST(VictimAuditDeath, CatchesQuotaViolatingEviction)
{
    auto policy = std::make_unique<VpcCapacityManager>(
        std::vector<double>{0.5, 0.5}, 4);
    const VpcCapacityManager &mgr = *policy;
    CacheArray arr(4, 4, 64, std::move(policy));
    arr.setVictimAudit(makeVpcVictimAudit(mgr, "arr"));

    // Fill set 0: each thread holds exactly its quota (2 ways).
    constexpr Addr kSetStride = 4 * 64;
    arr.insert(0 * kSetStride, 0, false);
    arr.insert(1 * kSetStride, 0, false);
    arr.insert(2 * kSetStride, 1, false);
    arr.insert(3 * kSetStride, 1, false);

    // A clean insert by thread 0 must evict thread 0's own line
    // (condition 2), which the audit accepts.
    arr.insert(4 * kSetStride, 0, false);

    // Forcing the victim onto thread 1 -- which holds no more than
    // its allocation -- is exactly the replacement bug condition 1
    // forbids.
    std::span<const CacheLine> set = arr.setLines(0);
    unsigned way1 = arr.numWays();
    for (unsigned w = 0; w < arr.numWays(); ++w) {
        if (set[w].valid && set[w].owner == 1)
            way1 = w;
    }
    ASSERT_LT(way1, arr.numWays());
    arr.faultForceNextVictim(way1);
    EXPECT_DEATH(arr.insert(5 * kSetStride, 0, false), "condition 1");
}

// --------------------------------------------------------------
// EventQueueAuditor
// --------------------------------------------------------------

TEST(EventQueueAuditorDeath, CatchesStaleEvent)
{
    EventQueue q;
    q.schedule(5, [] {});
    EventQueueAuditor aud(q);
    aud.check(3); // event still in the future: fine
    EXPECT_DEATH(aud.check(10), "stale event");
}

// --------------------------------------------------------------
// Full-system wiring
// --------------------------------------------------------------

std::vector<std::unique_ptr<Workload>>
loadsAndStores()
{
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    return wl;
}

TEST(VerifySystem, ParanoidRunWithNoFaultsIsClean)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.verify.paranoid = 2;
    cfg.verify.watchdogCycles = 10'000;
    CmpSystem sys(cfg, loadsAndStores());
    ASSERT_NE(sys.verifier(), nullptr);
    sys.run(30'000);
    // Paranoid level 2 sweeps every checker every cycle.
    EXPECT_EQ(sys.verifier()->auditsRun(), 30'000u);
    EXPECT_GT(sys.cpu(0).instrsRetired(), 0u);
    EXPECT_GT(sys.cpu(1).instrsRetired(), 0u);
}

TEST(VerifySystem, ParanoidLevel1AuditsOnTheInterval)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    cfg.verify.paranoid = 1;
    cfg.verify.auditInterval = 64;
    CmpSystem sys(cfg, loadsAndStores());
    ASSERT_NE(sys.verifier(), nullptr);
    sys.run(6'400);
    EXPECT_EQ(sys.verifier()->auditsRun(), 100u);
}

TEST(VerifySystem, DisabledVerifyInstallsNothing)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    CmpSystem sys(cfg, loadsAndStores());
    EXPECT_EQ(sys.verifier(), nullptr);
}

TEST(VerifySystem, DumpStateRendersTheMachine)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.verify.paranoid = 1;
    CmpSystem sys(cfg, loadsAndStores());
    sys.run(1'000);
    std::string dump = sys.dumpState();
    EXPECT_NE(dump.find("cycle"), std::string::npos);
    EXPECT_NE(dump.find("bank0"), std::string::npos);
}

TEST(VerifySystemDeath, InjectedFaultsTripTheAuditors)
{
    // With every fault hook registered and checks every cycle, a
    // corrupted machine must be diagnosed: the run dies in a panic
    // (whichever auditor catches its fault first) instead of
    // completing with silently wrong state.
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.verify.paranoid = 2;
    cfg.verify.faultRate = 0.02;
    cfg.verify.faultSeed = 7;
    CmpSystem sys(cfg, loadsAndStores());
    ASSERT_NE(sys.verifier(), nullptr);
    ASSERT_NE(sys.verifier()->injector(), nullptr);
    EXPECT_DEATH(sys.run(60'000), "panic");
}

} // namespace
} // namespace vpc
