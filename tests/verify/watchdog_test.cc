/**
 * @file
 * Watchdog tests: unit-level with synthetic progress/outstanding
 * sources, and system-level against the RoW-FCFS store-starvation
 * pathology of Section 3.1 / Figure 8.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "verify/watchdog.hh"
#include "workload/microbench.hh"

namespace vpc
{
namespace
{

struct FakeThread
{
    std::uint64_t progress = 0;
    bool outstanding = false;

    Watchdog::Source source()
    {
        return Watchdog::Source{[this] { return progress; },
                                [this] { return outstanding; }};
    }
};

TEST(WatchdogDeath, StalledThreadWithOutstandingWorkPanics)
{
    Watchdog wd(100);
    FakeThread t;
    t.progress = 5;
    t.outstanding = true;
    wd.addThread(t.source());
    wd.check(0);
    wd.check(50); // quiet, but under the limit
    EXPECT_DEATH(wd.check(150), "watchdog");
}

TEST(Watchdog, IdleThreadNeverTrips)
{
    Watchdog wd(100);
    FakeThread t; // never outstanding: idle by choice
    wd.addThread(t.source());
    wd.check(0);
    wd.check(1'000);
    wd.check(10'000);
}

TEST(Watchdog, ProgressingThreadNeverTrips)
{
    Watchdog wd(100);
    FakeThread t;
    t.outstanding = true;
    wd.addThread(t.source());
    for (Cycle now = 0; now < 2'000; now += 50) {
        ++t.progress;
        wd.check(now);
    }
}

TEST(WatchdogDeath, IdleStretchDoesNotCountTowardStarvation)
{
    // A thread idle past the limit gets a fresh window when work
    // appears: only time spent quiet *with* outstanding requests is
    // starvation.
    Watchdog wd(100);
    FakeThread t;
    wd.addThread(t.source());
    wd.check(0);
    wd.check(1'000); // long idle stretch; window resets here
    t.outstanding = true;
    wd.check(1'050); // only 50 quiet cycles charged: fine
    EXPECT_DEATH(wd.check(1'200), "watchdog");
}

TEST(WatchdogDeath, ZeroLimitRejected)
{
    EXPECT_EXIT((Watchdog{0}), testing::ExitedWithCode(1), "limit");
}

// --------------------------------------------------------------
// System-level: the paper's motivating starvation case
// --------------------------------------------------------------

std::vector<std::unique_ptr<Workload>>
loadsAndStores()
{
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    return wl;
}

TEST(WatchdogSystemDeath, CatchesRowFcfsStoreStarvation)
{
    // RoW-FCFS reorders reads over writes with no aging: the Loads
    // thread's read stream starves the Stores thread indefinitely
    // (Figure 8 shows IPC ~= 0).  The watchdog turns that silent
    // hang into a diagnosed panic.
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::RowFcfs);
    cfg.verify.watchdogCycles = 5'000;
    CmpSystem sys(cfg, loadsAndStores());
    ASSERT_NE(sys.verifier(), nullptr);
    EXPECT_DEATH(sys.run(60'000), "watchdog");
}

TEST(WatchdogSupervision, CancelTokenThrowsJobCancelled)
{
    Watchdog wd(100);
    FakeThread t;
    wd.addThread(t.source());
    CancelToken cancel{false};
    wd.setCancelToken(&cancel);
    wd.check(0); // token clear: nothing happens
    cancel.store(true);
    EXPECT_THROW(wd.check(1), JobCancelled);
}

TEST(WatchdogSupervision, WallDeadlineThrowsDeadlineExceeded)
{
    Watchdog wd(1'000'000);
    FakeThread t;
    t.progress = 1;
    wd.addThread(t.source());
    wd.armWallDeadline(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // The wall clock is sampled every kWallCheckInterval checks, so
    // drive it past one full sampling window.
    auto drive = [&] {
        for (std::uint64_t i = 0;
             i <= Watchdog::kWallCheckInterval + 1; ++i) {
            t.progress += 1; // never starving
            wd.check(i);
        }
    };
    EXPECT_THROW(drive(), DeadlineExceeded);
}

TEST(WatchdogSupervision, DisarmedDeadlineNeverTrips)
{
    Watchdog wd(1'000'000);
    FakeThread t;
    t.progress = 1;
    wd.addThread(t.source());
    wd.armWallDeadline(std::chrono::milliseconds(1));
    wd.armWallDeadline(std::chrono::milliseconds(0)); // disarm
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    for (std::uint64_t i = 0;
         i <= 2 * Watchdog::kWallCheckInterval; ++i) {
        t.progress += 1;
        wd.check(i);
    }
    SUCCEED();
}

TEST(WatchdogSystem, VpcSurvivesTheSameWorkloadMix)
{
    // Same workloads, same watchdog, VPC arbitration: the Stores
    // thread's bandwidth share guarantees forward progress.
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.verify.paranoid = 1;
    cfg.verify.watchdogCycles = 5'000;
    CmpSystem sys(cfg, loadsAndStores());
    sys.run(60'000);
    EXPECT_GT(sys.cpu(0).instrsRetired(), 0u);
    EXPECT_GT(sys.cpu(1).instrsRetired(), 0u);
}

} // namespace
} // namespace vpc
