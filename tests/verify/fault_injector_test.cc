/**
 * @file
 * Unit tests for the deterministic fault injector.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "verify/fault_injector.hh"

namespace vpc
{
namespace
{

/** Record the cycles at which one fault fires over @p cycles. */
std::vector<Cycle>
injectionSchedule(double rate, std::uint64_t seed, Cycle cycles)
{
    FaultInjector inj(rate, seed);
    std::vector<Cycle> fired;
    Cycle now = 0;
    inj.addFault("probe", [&] {
        fired.push_back(now);
        return true;
    });
    for (; now < cycles; ++now)
        inj.maybeInject(now);
    return fired;
}

TEST(FaultInjector, SameRateAndSeedInjectIdentically)
{
    std::vector<Cycle> a = injectionSchedule(0.01, 42, 20'000);
    std::vector<Cycle> b = injectionSchedule(0.01, 42, 20'000);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(FaultInjector, DifferentSeedsInjectDifferently)
{
    std::vector<Cycle> a = injectionSchedule(0.01, 42, 20'000);
    std::vector<Cycle> b = injectionSchedule(0.01, 43, 20'000);
    EXPECT_NE(a, b);
}

TEST(FaultInjector, ZeroRateNeverFires)
{
    EXPECT_TRUE(injectionSchedule(0.0, 42, 20'000).empty());
}

TEST(FaultInjector, RateOneFiresEveryCycle)
{
    EXPECT_EQ(injectionSchedule(1.0, 7, 100).size(), 100u);
}

TEST(FaultInjector, OnlyAppliedFaultsAreCounted)
{
    FaultInjector inj(1.0, 1);
    bool armed = false;
    inj.addFault("conditional", [&] { return armed; });
    for (Cycle c = 0; c < 10; ++c)
        inj.maybeInject(c);
    EXPECT_EQ(inj.injectedCount(), 0u);
    armed = true;
    for (Cycle c = 10; c < 20; ++c)
        inj.maybeInject(c);
    EXPECT_EQ(inj.injectedCount(), 10u);
}

TEST(FaultInjector, PicksEveryRegisteredFaultEventually)
{
    FaultInjector inj(1.0, 3);
    std::vector<unsigned> hits(3, 0);
    for (unsigned i = 0; i < 3; ++i) {
        inj.addFault("f" + std::to_string(i), [&hits, i] {
            ++hits[i];
            return true;
        });
    }
    EXPECT_EQ(inj.faultCount(), 3u);
    for (Cycle c = 0; c < 300; ++c)
        inj.maybeInject(c);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_GT(hits[i], 0u) << "fault " << i << " never chosen";
}

TEST(FaultInjector, NoRegisteredFaultsIsANoOp)
{
    FaultInjector inj(1.0, 5);
    for (Cycle c = 0; c < 10; ++c)
        inj.maybeInject(c);
    EXPECT_EQ(inj.injectedCount(), 0u);
}

TEST(FaultInjectorDeath, RejectsRateOutOfRange)
{
    EXPECT_EXIT((FaultInjector{1.5, 0}), testing::ExitedWithCode(1),
                "out of");
    EXPECT_EXIT((FaultInjector{-0.1, 0}), testing::ExitedWithCode(1),
                "out of");
}

} // namespace
} // namespace vpc
