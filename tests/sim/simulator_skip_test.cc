/**
 * @file
 * Tests of the quiescence-aware kernel: fast-forward across idle
 * spans, active-set tick gating, equivalence with the naive loop, and
 * the kernel work counters.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace vpc
{
namespace
{

/**
 * A component that does observable work on an explicit list of cycles
 * and honours the quiescence contract: nextWork() returns the next
 * listed cycle, tick() on any other cycle is a no-op.
 */
struct Sparse : Ticking
{
    Sparse(std::vector<Cycle> due_, std::vector<Cycle> *log_ = nullptr)
        : due(std::move(due_)), log(log_)
    {}

    void
    tick(Cycle now) override
    {
        if (idx < due.size() && due[idx] == now) {
            ++idx;
            ++work;
            if (log)
                log->push_back(now);
        }
    }

    Cycle
    nextWork(Cycle now) const override
    {
        for (std::size_t i = idx; i < due.size(); ++i) {
            if (due[i] >= now)
                return due[i];
        }
        return kCycleMax;
    }

    std::vector<Cycle> due;
    std::vector<Cycle> *log;
    std::size_t idx = 0;
    unsigned work = 0;
};

/** Counts every tick() call; always claims work (naive component). */
struct Eager : Ticking
{
    void tick(Cycle) override { ++ticks; }
    unsigned ticks = 0;
};

TEST(SimulatorSkip, FastForwardsAcrossIdleSpans)
{
    Simulator sim;
    Sparse s({10, 20, 1000});
    sim.addTicking(&s);
    sim.run(2000);
    EXPECT_EQ(sim.now(), 2000u);
    EXPECT_EQ(s.work, 3u);
    const KernelStats &k = sim.kernelStats();
    // Cycle 0 is always inspected (due events must run before any
    // skip decision); beyond that only the three work cycles execute.
    EXPECT_EQ(k.cyclesExecuted.value(), 4u);
    EXPECT_EQ(k.cyclesSkipped.value(), 2000u - 4u);
    EXPECT_EQ(k.ticksExecuted.value(), 3u);
}

TEST(SimulatorSkip, CountersAccountForEveryCycle)
{
    Simulator sim;
    Sparse s({0, 7, 400});
    sim.addTicking(&s);
    sim.run(500);
    const KernelStats &k = sim.kernelStats();
    EXPECT_EQ(k.cyclesExecuted.value() + k.cyclesSkipped.value(), 500u);
}

TEST(SimulatorSkip, NoSkipExecutesEveryCycle)
{
    Simulator sim;
    sim.setSkipping(false);
    Sparse s({10, 20});
    sim.addTicking(&s);
    sim.run(100);
    EXPECT_EQ(s.work, 2u);
    EXPECT_EQ(sim.kernelStats().cyclesExecuted.value(), 100u);
    EXPECT_EQ(sim.kernelStats().cyclesSkipped.value(), 0u);
}

TEST(SimulatorSkip, DefaultNextWorkKeepsNaiveBehaviour)
{
    // A component without a nextWork() override must be ticked every
    // cycle even with skipping enabled.
    Simulator sim;
    Eager e;
    sim.addTicking(&e);
    sim.run(50);
    EXPECT_EQ(e.ticks, 50u);
    EXPECT_EQ(sim.kernelStats().cyclesSkipped.value(), 0u);
}

TEST(SimulatorSkip, ActiveSetGatesQuiescentComponents)
{
    // With one eager and one sparse component, every cycle executes
    // but the sparse component is only ticked on its work cycles.
    Simulator sim;
    Eager e;
    Sparse s({25});
    sim.addTicking(&e);
    sim.addTicking(&s);
    sim.run(100);
    EXPECT_EQ(e.ticks, 100u);
    EXPECT_EQ(s.work, 1u);
    EXPECT_EQ(sim.kernelStats().ticksExecuted.value(), 100u + 1u);
}

TEST(SimulatorSkip, EventsWakeASleepingMachine)
{
    Simulator sim;
    Sparse s({});  // never has self-generated work
    sim.addTicking(&s);
    Cycle fired_at = kCycleMax;
    sim.events().schedule(700, [&] { fired_at = sim.now(); });
    sim.run(1000);
    EXPECT_EQ(fired_at, 700u);
    // Cycle 700 executed; the spans on both sides were skipped.
    EXPECT_EQ(sim.kernelStats().eventsFired.value(), 1u);
    EXPECT_LE(sim.kernelStats().cyclesExecuted.value(), 2u);
}

TEST(SimulatorSkip, EventActivatedComponentTicksSameCycle)
{
    // An event at cycle N hands work to a quiescent component; the
    // interleaved re-poll must tick it at N, not N+1.
    struct Armed : Ticking
    {
        bool armed = false;
        Cycle ticked_at = kCycleMax;
        void
        tick(Cycle now) override
        {
            if (armed && ticked_at == kCycleMax)
                ticked_at = now;
        }
        Cycle
        nextWork(Cycle now) const override
        {
            return armed ? now : kCycleMax;
        }
    } comp;
    Simulator sim;
    sim.addTicking(&comp);
    sim.events().schedule(300, [&] { comp.armed = true; });
    sim.run(1000);
    EXPECT_EQ(comp.ticked_at, 300u);
}

TEST(SimulatorSkip, EarlierComponentWakesLaterOneSameCycle)
{
    // Producer (registered first) activates the consumer inside its
    // own work cycle; the consumer's hint is re-polled after the
    // producer ticks, so the consumer must run that same cycle.
    struct Consumer : Ticking
    {
        bool armed = false;
        Cycle ticked_at = kCycleMax;
        void
        tick(Cycle now) override
        {
            if (armed && ticked_at == kCycleMax)
                ticked_at = now;
        }
        Cycle
        nextWork(Cycle now) const override
        {
            return armed ? now : kCycleMax;
        }
    };
    struct Producer : Ticking
    {
        Consumer *peer;
        void
        tick(Cycle now) override
        {
            if (now == 40)
                peer->armed = true;
        }
        Cycle
        nextWork(Cycle now) const override
        {
            return now <= 40 ? 40 : kCycleMax;
        }
    };
    Simulator sim;
    Consumer c;
    Producer p;
    p.peer = &c;
    sim.addTicking(&p);
    sim.addTicking(&c);
    sim.run(100);
    EXPECT_EQ(c.ticked_at, 40u);
}

TEST(SimulatorSkip, SkipAndNaiveProduceIdenticalWorkSchedules)
{
    // Run the same little machine twice — skipping on and off — and
    // require identical observable histories and final cycle.
    auto build_and_run = [](bool skip, std::vector<Cycle> &log) {
        Simulator sim;
        sim.setSkipping(skip);
        Sparse a({3, 9, 9, 60, 512}, &log);
        Sparse b({4, 60, 777}, &log);
        sim.addTicking(&a);
        sim.addTicking(&b);
        sim.events().schedule(100, [] {});
        sim.run(1000);
        return sim.now();
    };
    std::vector<Cycle> log_skip, log_naive;
    Cycle end_skip = build_and_run(true, log_skip);
    Cycle end_naive = build_and_run(false, log_naive);
    EXPECT_EQ(end_skip, end_naive);
    EXPECT_EQ(log_skip, log_naive);
}

TEST(SimulatorSkip, AuditorForcesNaiveLoop)
{
    struct CycleAuditor : Auditable
    {
        Cycle last = kCycleMax;
        unsigned audits = 0;
        void
        audit(Cycle now) override
        {
            // Every cycle must be audited exactly once, in order.
            if (audits > 0) {
                EXPECT_EQ(now, last + 1);
            }
            last = now;
            ++audits;
        }
    } aud;
    Simulator sim;
    Sparse s({50});
    sim.addTicking(&s);
    sim.setAuditor(&aud);
    sim.run(200);
    EXPECT_EQ(aud.audits, 200u);
    EXPECT_EQ(sim.kernelStats().cyclesSkipped.value(), 0u);
}

TEST(SimulatorSkip, RunEndsExactlyAtRequestedCycle)
{
    // The fast-forward target must clamp to the end of the run, even
    // when the next work cycle lies beyond it.
    Simulator sim;
    Sparse s({5, 100000});
    sim.addTicking(&s);
    sim.run(137);
    EXPECT_EQ(sim.now(), 137u);
    EXPECT_EQ(s.work, 1u);
}

} // namespace
} // namespace vpc
