/**
 * @file
 * Unit tests for the deterministic PCG32 generator.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

namespace vpc
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42, 7), b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(42, 1), b(42, 2);
    bool differ = false;
    for (int i = 0; i < 16 && !differ; ++i)
        differ = a.next32() != b.next32();
    EXPECT_TRUE(differ);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, GeometricMean)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i)
        sum += r.geometric(4.0);
    EXPECT_NEAR(sum / 5000.0, 4.0, 0.3);
    EXPECT_EQ(r.geometric(0.5), 1u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng r(1);
    EXPECT_DEATH(r.below(0), "bound 0");
}

} // namespace
} // namespace vpc
