/**
 * @file
 * ThreadPool contract tests: every index runs exactly once, the
 * caller participates (zero-worker pools still complete), batches are
 * reusable, and the first exception from a task is rethrown to the
 * dispatcher.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hh"

namespace vpc
{
namespace
{

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(100);
    pool.dispatch(hits.size(),
                  [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    ThreadPool pool(0);
    std::vector<std::size_t> order;
    pool.dispatch(5, [&](std::size_t i) { order.push_back(i); });
    // Only the calling thread exists, so execution is serial and in
    // index order.
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, BatchesAreReusable)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int round = 0; round < 10; ++round)
        pool.dispatch(7, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 70);
}

TEST(ThreadPool, EmptyDispatchReturnsImmediately)
{
    ThreadPool pool(2);
    pool.dispatch(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, FirstTaskExceptionRethrown)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.dispatch(8,
                      [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 3)
                              throw std::runtime_error("task 3");
                      }),
        std::runtime_error);
    // Remaining tasks still complete (the batch drains fully).
    EXPECT_EQ(ran.load(), 8);
    // And the pool stays usable.
    pool.dispatch(2, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, CancelSkipsUndispatchedTail)
{
    // Serial pool: task 0 runs first and cancels; every later index
    // must be skipped, and the skip counter must say exactly how many.
    ThreadPool pool(0);
    std::atomic<int> ran{0};
    pool.dispatch(10, [&](std::size_t) {
        ran.fetch_add(1);
        pool.requestCancel();
    });
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(pool.skippedTasks(), 9u);

    // The flag is sticky: a new batch is skipped entirely...
    pool.dispatch(4, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(pool.skippedTasks(), 13u);

    // ...until cleared.
    pool.clearCancel();
    pool.dispatch(4, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 5);
    EXPECT_EQ(pool.skippedTasks(), 13u);
}

TEST(ThreadPool, CancelledDispatchStillDrainsInFlightTasks)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    pool.dispatch(64, [&](std::size_t i) {
        if (i == 0)
            pool.requestCancel();
        completed.fetch_add(1);
    });
    // Whatever started finished; started + skipped covers the batch.
    EXPECT_EQ(static_cast<std::uint64_t>(completed.load()) +
                  pool.skippedTasks(),
              64u);
    EXPECT_GE(completed.load(), 1);
}

} // namespace
} // namespace vpc
