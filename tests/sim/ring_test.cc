/** @file SmallRing unit tests. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/ring.hh"

using namespace vpc;

TEST(SmallRing, StartsEmpty)
{
    SmallRing<int> r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.size(), 0u);
}

TEST(SmallRing, FifoOrder)
{
    SmallRing<int> r;
    for (int i = 0; i < 5; ++i)
        r.push_back(i);
    EXPECT_EQ(r.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(r.front(), i);
        r.pop_front();
    }
    EXPECT_TRUE(r.empty());
}

TEST(SmallRing, IndexingIsFrontRelative)
{
    SmallRing<int> r;
    for (int i = 0; i < 4; ++i)
        r.push_back(10 + i);
    r.pop_front();
    EXPECT_EQ(r[0], 11);
    EXPECT_EQ(r[2], 13);
    EXPECT_EQ(r.back(), 13);
}

TEST(SmallRing, WrapsAroundWithoutGrowing)
{
    SmallRing<int> r;
    // Interleave pushes and pops so head walks around the backing
    // array many times while size stays small.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 100; ++round) {
        r.push_back(next_in++);
        r.push_back(next_in++);
        EXPECT_EQ(r.front(), next_out++);
        r.pop_front();
    }
    std::size_t cap = r.capacity();
    for (int round = 0; round < 100; ++round) {
        r.push_back(next_in++);
        EXPECT_EQ(r.front(), next_out++);
        r.pop_front();
    }
    EXPECT_EQ(r.capacity(), cap) << "steady state must not grow";
}

TEST(SmallRing, GrowsPreservingOrderAcrossWrap)
{
    SmallRing<int> r;
    // Misalign head first so the growth copy has to unwrap.
    for (int i = 0; i < 6; ++i)
        r.push_back(i);
    for (int i = 0; i < 6; ++i)
        r.pop_front();
    for (int i = 0; i < 100; ++i)
        r.push_back(i);
    EXPECT_EQ(r.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r[static_cast<std::size_t>(i)], i);
}

TEST(SmallRing, EraseAtPreservesSurvivorOrder)
{
    SmallRing<int> r;
    for (int i = 0; i < 6; ++i)
        r.push_back(i);
    r.erase_at(2);
    std::vector<int> got;
    for (int v : r)
        got.push_back(v);
    EXPECT_EQ(got, (std::vector<int>{0, 1, 3, 4, 5}));
    r.erase_at(0);
    EXPECT_EQ(r.front(), 1);
    r.erase_at(r.size() - 1);
    EXPECT_EQ(r.back(), 4);
}

TEST(SmallRing, EraseAtAcrossWrapPoint)
{
    SmallRing<int> r;
    // Force the live window to straddle the wrap point (capacity 8).
    for (int i = 0; i < 6; ++i)
        r.push_back(i);
    for (int i = 0; i < 6; ++i)
        r.pop_front();
    for (int i = 0; i < 7; ++i)
        r.push_back(i);
    r.erase_at(3);
    std::vector<int> got;
    for (int v : r)
        got.push_back(v);
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 4, 5, 6}));
}

TEST(SmallRing, PopFrontReleasesHeldResources)
{
    SmallRing<std::shared_ptr<int>> r;
    auto p = std::make_shared<int>(42);
    std::weak_ptr<int> w = p;
    r.push_back(std::move(p));
    ASSERT_FALSE(w.expired());
    r.pop_front();
    EXPECT_TRUE(w.expired()) << "pop_front must not pin the element";
}

TEST(SmallRing, ClearEmptiesAndReuses)
{
    SmallRing<std::string> r;
    for (int i = 0; i < 20; ++i)
        r.push_back(std::to_string(i));
    r.clear();
    EXPECT_TRUE(r.empty());
    r.push_back("fresh");
    EXPECT_EQ(r.front(), "fresh");
}

TEST(SmallRing, ReserveRoundsUpToPowerOfTwo)
{
    SmallRing<int> r(100);
    EXPECT_GE(r.capacity(), 100u);
    EXPECT_EQ(r.capacity() & (r.capacity() - 1), 0u);
}

TEST(SmallRingDeath, EmptyAccessPanics)
{
    SmallRing<int> r;
    EXPECT_DEATH(r.front(), "empty");
    EXPECT_DEATH(r.back(), "empty");
    EXPECT_DEATH(r.pop_front(), "empty");
    r.push_back(1);
    EXPECT_DEATH(r.erase_at(1), "erase_at");
}
