/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace vpc
{
namespace
{

TEST(EventQueue, RunsDueEventsInOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(1); });
    q.schedule(9, [&] { order.push_back(3); });
    EXPECT_EQ(q.runDue(5), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.runDue(9), 1u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleEventsFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(4, [&order, i] { order.push_back(i); });
    q.runDue(4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(1, [&] { ++fired; }); // same-cycle chain
        q.schedule(2, [&] { ++fired; });
    });
    q.runDue(1);
    EXPECT_EQ(fired, 2);
    q.runDue(2);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), kCycleMax);
    q.schedule(7, [] {});
    EXPECT_EQ(q.nextEventCycle(), 7u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.runDue(10);
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

TEST(EventQueue, RunningBackwardPanics)
{
    EventQueue q;
    q.runDue(10);
    EXPECT_EQ(q.lastRunCycle(), 10u);
    EXPECT_DEATH(q.runDue(9), "backward");
}

TEST(EventQueue, SizeAndEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.runDue(1);
    EXPECT_EQ(q.size(), 1u);
}

} // namespace
} // namespace vpc
