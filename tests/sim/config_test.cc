/**
 * @file
 * Unit tests for SystemConfig validation (Table 1 defaults).
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

namespace vpc
{
namespace
{

TEST(SystemConfig, Table1Defaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.numProcessors, 4u);
    EXPECT_EQ(cfg.l2.banks, 2u);
    EXPECT_EQ(cfg.l2.sizeBytes, 16ull * 1024 * 1024);
    EXPECT_EQ(cfg.l2.ways, 32u);
    EXPECT_EQ(cfg.l2.tagLatency, 4u);
    EXPECT_EQ(cfg.l2.dataLatency, 8u);
    EXPECT_EQ(cfg.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.l1.ways, 4u);
    EXPECT_EQ(cfg.core.robEntries, 100u);
    EXPECT_EQ(cfg.l2.sgbEntriesPerThread, 8u);
    EXPECT_EQ(cfg.l2.sgbHighWater, 6u);
    EXPECT_EQ(cfg.l2.stateMachinesPerThread, 8u);
}

TEST(SystemConfig, SetsPerBank)
{
    SystemConfig cfg;
    // 8MB per bank / (32 ways * 64B) = 4096 sets.
    EXPECT_EQ(cfg.l2.setsPerBank(), 4096u);
    EXPECT_EQ(cfg.l2.setsPerBank(4), 2048u);
}

TEST(SystemConfig, DefaultSharesAreEqual)
{
    SystemConfig cfg;
    cfg.validate();
    ASSERT_EQ(cfg.shares.size(), 4u);
    for (const QosShare &s : cfg.shares) {
        EXPECT_DOUBLE_EQ(s.phi, 0.25);
        EXPECT_DOUBLE_EQ(s.beta, 0.25);
    }
}

TEST(SystemConfig, OverAllocationFatal)
{
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.shares = {QosShare{0.7, 0.5}, QosShare{0.7, 0.5}};
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "over-allocated");
}

TEST(SystemConfig, ShareCountMismatchFatal)
{
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.shares = {QosShare{0.5, 0.5}};
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "shares");
}

TEST(SystemConfig, PartialAllocationIsLegal)
{
    // Figure 1b: 50% + 3 x 10% leaves 20% unallocated.
    SystemConfig cfg;
    cfg.shares = {QosShare{0.5, 0.5}, QosShare{0.1, 0.1},
                  QosShare{0.1, 0.1}, QosShare{0.1, 0.1}};
    cfg.validate();
    EXPECT_DOUBLE_EQ(cfg.shares[0].phi, 0.5);
}

TEST(SystemConfig, PhiZeroUnderVpcArbiterFatal)
{
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.arbiterPolicy = ArbiterPolicy::Vpc;
    cfg.shares = {QosShare{1.0, 0.5}, QosShare{0.0, 0.5}};
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "phi = 0");
}

TEST(SystemConfig, PhiZeroAllowedWithEscapeHatch)
{
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.arbiterPolicy = ArbiterPolicy::Vpc;
    cfg.allowUnallocatedShares = true;
    cfg.shares = {QosShare{1.0, 0.5}, QosShare{0.0, 0.5}};
    cfg.validate();
}

TEST(SystemConfig, PhiZeroFineUnderNonVpcArbiter)
{
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.arbiterPolicy = ArbiterPolicy::Fcfs;
    cfg.capacityPolicy = CapacityPolicy::Lru;
    cfg.shares = {QosShare{1.0, 0.5}, QosShare{0.0, 0.5}};
    cfg.validate();
}

TEST(SystemConfig, BetaQuotaRoundingToZeroWaysFatal)
{
    // floor(0.02 * 32) = 0 ways: the thread's virtual private cache
    // would hold nothing.
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.capacityPolicy = CapacityPolicy::Vpc;
    cfg.shares = {QosShare{0.5, 0.5}, QosShare{0.5, 0.02}};
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "rounds to zero");
}

TEST(SystemConfig, BetaQuotaZeroAllowedWithEscapeHatch)
{
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.capacityPolicy = CapacityPolicy::Vpc;
    cfg.allowUnallocatedShares = true;
    cfg.shares = {QosShare{0.5, 0.5}, QosShare{0.5, 0.02}};
    cfg.validate();
}

TEST(SystemConfig, L2SizeMustFactorExactly)
{
    SystemConfig cfg;
    cfg.l2.sizeBytes = 16ull * 1024 * 1024 + 2048;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "not divisible");
}

TEST(SystemConfig, L2SetsPerBankMustBePowerOf2)
{
    SystemConfig cfg;
    // 12MB / (2 banks * 32 ways * 64B) = 3072 sets: divisible but
    // not a power of 2.
    cfg.l2.sizeBytes = 12ull * 1024 * 1024;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "sets per bank");
}

TEST(SystemConfig, L2ZeroWaysFatal)
{
    SystemConfig cfg;
    cfg.l2.ways = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "at least one way");
}

TEST(SystemConfig, L1GeometryMustGivePowerOf2Sets)
{
    SystemConfig cfg;
    cfg.l1.sizeBytes = 48 * 1024; // 192 sets
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "power of 2");
    SystemConfig cfg2;
    cfg2.l1.sizeBytes = 16 * 1024 + 64; // remainder
    EXPECT_EXIT(cfg2.validate(), testing::ExitedWithCode(1),
                "power of 2");
}

TEST(SystemConfig, NonPowerOf2LineSizeFatal)
{
    SystemConfig cfg;
    cfg.l2.lineBytes = 48;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "powers of 2");
}

TEST(Types, LineAlignAndLog2)
{
    EXPECT_EQ(lineAlign(0x12345, 64), 0x12340u);
    EXPECT_EQ(lineAlign(0x40, 64), 0x40u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(4096), 12u);
}

} // namespace
} // namespace vpc
