/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace vpc
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(UtilizationStat, ComputesFraction)
{
    UtilizationStat u;
    u.addBusy(25);
    u.addBusy(25);
    EXPECT_EQ(u.busyCycles(), 50u);
    EXPECT_DOUBLE_EQ(u.utilization(100), 0.5);
    EXPECT_DOUBLE_EQ(u.utilization(0), 0.0);
}

TEST(UtilizationStat, ClampsToOne)
{
    UtilizationStat u;
    u.addBusy(150);
    EXPECT_DOUBLE_EQ(u.utilization(100), 1.0);
}

TEST(SampleStat, TracksMeanMinMax)
{
    SampleStat s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 4); // buckets [0,10) ... [30,40) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(1000);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u); // overflow
}

TEST(StatGroup, EnumeratesRegisteredStats)
{
    Counter c;
    UtilizationStat u;
    c.inc(7);
    u.addBusy(30);
    StatGroup g;
    g.addCounter("c", c);
    g.addUtilization("u", u);
    auto counters = g.counterValues();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].first, "c");
    EXPECT_EQ(counters[0].second, 7u);
    auto utils = g.utilizationValues(60);
    ASSERT_EQ(utils.size(), 1u);
    EXPECT_DOUBLE_EQ(utils[0].second, 0.5);
}

} // namespace
} // namespace vpc
