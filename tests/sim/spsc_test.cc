/**
 * @file
 * SpscRing tests, centered on the consumer span interface the batched
 * drain rides on (DESIGN.md 5h): readable()/peek()/release() must see
 * exactly the messages pop() would, in the same order, both
 * single-threaded and against a concurrent producer.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sim/spsc.hh"

namespace vpc
{
namespace
{

TEST(SpscRing, SpanDrainMatchesPerMessagePop)
{
    // Two identically-fed rings; drain one with pop() and one with
    // variable-size spans.  Interleave pushes between drains so the
    // spans cross the ring's wrap point repeatedly (capacity 16).
    SpscRing<std::uint64_t, 16> byPop;
    SpscRing<std::uint64_t, 16> bySpan;
    std::vector<std::uint64_t> popped, spanned;
    std::uint64_t next = 0;

    auto feed = [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i, ++next) {
            byPop.push(next);
            bySpan.push(next);
        }
    };
    auto drainPop = [&] {
        std::uint64_t v;
        while (byPop.pop(v))
            popped.push_back(v);
    };
    auto drainSpan = [&] {
        // Retire in chunks of at most 3 to exercise partial release.
        while (true) {
            std::size_t n = bySpan.readable();
            if (n == 0)
                break;
            if (n > 3)
                n = 3;
            for (std::size_t i = 0; i < n; ++i)
                spanned.push_back(bySpan.peek(i));
            bySpan.release(n);
        }
    };

    for (std::size_t burst : {1u, 7u, 16u, 3u, 12u, 16u, 5u}) {
        feed(burst);
        drainPop();
        drainSpan();
    }
    EXPECT_EQ(popped.size(), next);
    EXPECT_EQ(spanned, popped);
}

TEST(SpscRing, PartialReleaseKeepsTheRemainderReadable)
{
    SpscRing<int, 8> ring;
    for (int i = 0; i < 5; ++i)
        ring.push(i);
    ASSERT_EQ(ring.readable(), 5u);
    EXPECT_EQ(ring.peek(0), 0);
    EXPECT_EQ(ring.peek(4), 4);
    ring.release(2);
    ASSERT_EQ(ring.readable(), 3u);
    // The span re-indexes from the new head.
    EXPECT_EQ(ring.peek(0), 2);
    EXPECT_EQ(ring.peek(2), 4);
    int v = -1;
    ASSERT_TRUE(ring.pop(v)); // pop and spans share one head
    EXPECT_EQ(v, 2);
    ring.release(2);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.readable(), 0u);
}

TEST(SpscRing, SpanDrainAgainstConcurrentProducer)
{
    // One producer pushing a known sequence, one consumer draining in
    // spans: the consumer must observe the exact sequence with no
    // gaps, duplicates or reorderings.  Capacity 64 with 100k messages
    // forces sustained wrap-around; the consumer spins when the
    // producer is ahead of it being empty.
    constexpr std::uint64_t kMessages = 20'000;
    SpscRing<std::uint64_t, 64> ring;
    std::vector<std::uint64_t> seen;
    seen.reserve(kMessages);

    // Yield when blocked: on a single-hardware-thread host a spinning
    // side would otherwise burn its whole timeslice before the peer
    // can make progress.
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kMessages;) {
            // readable() from the producer side may overestimate (its
            // head load is relaxed), so waiting for < 64 is safe:
            // push panics on a genuine overflow.
            if (ring.readable() < 64) {
                ring.push(i);
                ++i;
            } else {
                std::this_thread::yield();
            }
        }
    });
    while (seen.size() < kMessages) {
        std::size_t n = ring.readable();
        for (std::size_t i = 0; i < n; ++i)
            seen.push_back(ring.peek(i));
        if (n != 0)
            ring.release(n);
        else
            std::this_thread::yield();
    }
    producer.join();

    ASSERT_EQ(seen.size(), kMessages);
    for (std::uint64_t i = 0; i < kMessages; ++i)
        ASSERT_EQ(seen[i], i) << "at index " << i;
}

} // namespace
} // namespace vpc
