/**
 * @file
 * Unit tests for the named debug-trace flags.
 */

#include <gtest/gtest.h>

#include "sim/debug.hh"

namespace vpc
{
namespace
{

class DebugTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        using debug::Flag;
        for (int i = 0; i < static_cast<int>(Flag::NumFlags); ++i)
            debug::setEnabled(static_cast<Flag>(i), false);
    }
};

TEST_F(DebugTest, FlagsOffByDefault)
{
    EXPECT_FALSE(debug::enabled(debug::Flag::Arbiter));
    EXPECT_FALSE(debug::enabled(debug::Flag::L2Bank));
}

TEST_F(DebugTest, SetEnabledToggles)
{
    debug::setEnabled(debug::Flag::Memory, true);
    EXPECT_TRUE(debug::enabled(debug::Flag::Memory));
    EXPECT_FALSE(debug::enabled(debug::Flag::Prefetch));
    debug::setEnabled(debug::Flag::Memory, false);
    EXPECT_FALSE(debug::enabled(debug::Flag::Memory));
}

TEST_F(DebugTest, EnableFromListParsesNames)
{
    EXPECT_TRUE(debug::enableFromList("Arbiter,Prefetch"));
    EXPECT_TRUE(debug::enabled(debug::Flag::Arbiter));
    EXPECT_TRUE(debug::enabled(debug::Flag::Prefetch));
    EXPECT_FALSE(debug::enabled(debug::Flag::Cpu));
}

TEST_F(DebugTest, AllEnablesEverything)
{
    EXPECT_TRUE(debug::enableFromList("All"));
    EXPECT_TRUE(debug::enabled(debug::Flag::Arbiter));
    EXPECT_TRUE(debug::enabled(debug::Flag::Cpu));
}

TEST_F(DebugTest, UnknownNamesReportedButOthersApply)
{
    EXPECT_FALSE(debug::enableFromList("Bogus,L2Bank"));
    EXPECT_TRUE(debug::enabled(debug::Flag::L2Bank));
}

TEST_F(DebugTest, EmptySegmentsIgnored)
{
    EXPECT_TRUE(debug::enableFromList(",Memory,,"));
    EXPECT_TRUE(debug::enabled(debug::Flag::Memory));
}

TEST_F(DebugTest, FlagNamesRoundTrip)
{
    using debug::Flag;
    for (int i = 0; i < static_cast<int>(Flag::NumFlags); ++i) {
        Flag f = static_cast<Flag>(i);
        EXPECT_TRUE(debug::enableFromList(debug::flagName(f)));
        EXPECT_TRUE(debug::enabled(f)) << debug::flagName(f);
    }
}

TEST_F(DebugTest, DprintfIsSilentWhenDisabled)
{
    testing::internal::CaptureStderr();
    VPC_DPRINTF(Arbiter, "should not appear {}", 1);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(DebugTest, DprintfEmitsWhenEnabled)
{
    debug::setEnabled(debug::Flag::Arbiter, true);
    testing::internal::CaptureStderr();
    VPC_DPRINTF(Arbiter, "grant t{} F={:.1f}", 3, 2.5);
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("Arbiter: grant t3 F=2.5"), std::string::npos)
        << out;
}

} // namespace
} // namespace vpc
