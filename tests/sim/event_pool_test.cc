/**
 * @file
 * Tests of the EventQueue's pooled event storage: node reuse, ordering
 * among same-cycle events, reschedule-from-inside-a-callback safety,
 * the heap-box fallback for oversized captures, and destruction of
 * never-fired events.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

using namespace vpc;

TEST(EventPool, NodesAreReusedAcrossScheduleRunCycles)
{
    EventQueue q;
    int fired = 0;
    for (Cycle c = 1; c <= 100; ++c) {
        q.schedule(c, [&fired] { ++fired; });
        q.runDue(c);
    }
    EXPECT_EQ(fired, 100);
    // One node services every iteration: the pool never holds more
    // than the peak number of simultaneously pending events.
    EXPECT_EQ(q.poolAllocated(), 1u);
    EXPECT_EQ(q.poolFree(), 1u);
}

TEST(EventPool, PoolGrowsToPeakPendingNotTotalScheduled)
{
    EventQueue q;
    int fired = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 5; ++i) {
            q.schedule(static_cast<Cycle>(round * 10 + i + 1),
                       [&fired] { ++fired; });
        }
        q.runDue(static_cast<Cycle>(round * 10 + 9));
    }
    EXPECT_EQ(fired, 50);
    EXPECT_EQ(q.poolAllocated(), 5u) << "peak pending was 5";
    EXPECT_EQ(q.poolFree(), 5u);
}

TEST(EventPool, SameCycleEventsRunInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runDue(5);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventPool, SameCycleOrderSurvivesNodeReuse)
{
    EventQueue q;
    // Churn the free list so later schedules pull recycled nodes in
    // scrambled address order; sequence numbers must still decide.
    int warm = 0;
    for (int i = 0; i < 6; ++i)
        q.schedule(1, [&warm] { ++warm; });
    q.runDue(1);
    std::vector<int> order;
    for (int i = 0; i < 6; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.runDue(10);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventPool, RescheduleFromInsideCallback)
{
    EventQueue q;
    std::vector<Cycle> fired;
    // The callback re-arms itself; the pool must not hand the node's
    // storage to the new event while the old callable is mid-flight.
    struct SelfArm
    {
        EventQueue *q;
        std::vector<Cycle> *fired;
        Cycle at;
        void
        operator()() const
        {
            fired->push_back(at);
            if (at < 5) {
                q->schedule(at + 1, SelfArm{q, fired, at + 1});
            }
        }
    };
    q.schedule(1, SelfArm{&q, &fired, 1});
    for (Cycle c = 1; c <= 5; ++c)
        q.runDue(c);
    EXPECT_EQ(fired, (std::vector<Cycle>{1, 2, 3, 4, 5}));
}

TEST(EventPool, RescheduleForSameCycleRunsSameRunDue)
{
    EventQueue q;
    int fired = 0;
    q.schedule(3, [&] {
        ++fired;
        q.schedule(3, [&fired] { ++fired; });
    });
    EXPECT_EQ(q.runDue(3), 2u);
    EXPECT_EQ(fired, 2);
}

TEST(EventPool, OversizedCapturesFallBackToHeapBox)
{
    EventQueue q;
    std::array<char, 256> big{};
    big[0] = 42;
    char seen = 0;
    q.schedule(1, [big, &seen] { seen = big[0]; });
    q.runDue(1);
    EXPECT_EQ(seen, 42);
}

TEST(EventPool, PendingCallablesDestroyedWithQueue)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> w = token;
    {
        EventQueue q;
        q.schedule(100, [t = std::move(token)] { (void)*t; });
        ASSERT_FALSE(w.expired());
        // q destructs with the event still pending.
    }
    EXPECT_TRUE(w.expired())
        << "unfired events must release their captures";
}

TEST(EventPool, FiredCallableReleasedBeforeNextSchedule)
{
    EventQueue q;
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> w = token;
    q.schedule(1, [t = std::move(token)] { (void)*t; });
    q.runDue(1);
    EXPECT_TRUE(w.expired())
        << "captures must be destroyed when the event fires";
}
