/**
 * @file
 * Unit tests for the minimal "{}"-style formatter.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/format.hh"

namespace vpc
{
namespace
{

TEST(Format, PlainPlaceholders)
{
    EXPECT_EQ(format("a {} c {}", 1, "b"), "a 1 c b");
    EXPECT_EQ(format("{}", 3.5), "3.5");
    EXPECT_EQ(format("no placeholders"), "no placeholders");
}

TEST(Format, HexSpecification)
{
    EXPECT_EQ(format("{:#x}", 255), "0xff");
    EXPECT_EQ(format("{:x}", 255), "ff");
    EXPECT_EQ(format("{:#x}", 0x40000u), "0x40000");
}

TEST(Format, FixedPointSpecification)
{
    EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(format("{:.0f}", 2.7), "3");
    EXPECT_EQ(format("{:.3f}", 1.0), "1.000");
}

TEST(Format, SurplusPlaceholdersRenderAsIs)
{
    EXPECT_EQ(format("{} {}", 1), "1 {}");
}

TEST(Format, SurplusArgumentsIgnored)
{
    EXPECT_EQ(format("{}", 1, 2, 3), "1");
}

TEST(Format, EscapedBrace)
{
    EXPECT_EQ(format("{{} {}", 7), "{} 7");
}

TEST(Format, UnterminatedPlaceholderKeptVerbatim)
{
    EXPECT_EQ(format("x {", 1), "x {");
}

TEST(Format, MixedTypes)
{
    std::string s = format("thread {} addr {:#x} share {:.2f}",
                           3u, 0x1000, 0.25);
    EXPECT_EQ(s, "thread 3 addr 0x1000 share 0.25");
}

} // namespace
} // namespace vpc
