/**
 * @file
 * Unit tests for the cycle-stepped Simulator driver.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace vpc
{
namespace
{

struct Recorder : Ticking
{
    explicit Recorder(std::vector<int> &log_, int id_)
        : log(log_), id(id_)
    {}

    void tick(Cycle) override { log.push_back(id); }

    std::vector<int> &log;
    int id;
};

TEST(Simulator, TicksComponentsInRegistrationOrder)
{
    Simulator sim;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2), c(log, 3);
    sim.addTicking(&a);
    sim.addTicking(&b);
    sim.addTicking(&c);
    sim.step();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsRunBeforeComponentTicks)
{
    Simulator sim;
    std::vector<int> log;
    Recorder a(log, 2);
    sim.addTicking(&a);
    sim.events().schedule(0, [&log] { log.push_back(1); });
    sim.step();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunAdvancesExactly)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    sim.run(17);
    EXPECT_EQ(sim.now(), 17u);
    sim.step();
    EXPECT_EQ(sim.now(), 18u);
}

TEST(Simulator, TickSeesCurrentCycle)
{
    struct CycleCheck : Ticking
    {
        Cycle seen = kCycleMax;
        void tick(Cycle now) override { seen = now; }
    } check;
    Simulator sim;
    sim.addTicking(&check);
    sim.run(5);
    EXPECT_EQ(check.seen, 4u); // last executed cycle
}

TEST(Simulator, FutureEventsFireAtTheRightCycle)
{
    Simulator sim;
    Cycle fired_at = 0;
    sim.events().schedule(42, [&] { fired_at = sim.now(); });
    sim.run(100);
    EXPECT_EQ(fired_at, 42u);
}

TEST(Simulator, AuditHookRunsAfterEveryCycle)
{
    struct CountingAuditor : Auditable
    {
        std::vector<Cycle> seen;
        void audit(Cycle now) override { seen.push_back(now); }
    } aud;
    Simulator sim;
    std::vector<int> log;
    Recorder a(log, 1);
    sim.addTicking(&a);
    sim.setAuditor(&aud);
    sim.run(3);
    // One audit per cycle, observing the cycle just executed.
    EXPECT_EQ(aud.seen, (std::vector<Cycle>{0, 1, 2}));
    EXPECT_EQ(log.size(), 3u);
    sim.setAuditor(nullptr);
    sim.run(2);
    EXPECT_EQ(aud.seen.size(), 3u);
}

} // namespace
} // namespace vpc
