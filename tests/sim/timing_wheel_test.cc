/**
 * @file
 * Hierarchical-timing-wheel specifics of the EventQueue: slot routing
 * across the three levels (L0 slots, L1 blocks, overflow heap), the
 * cascade paths between them, and the keyed-scheduling hooks the
 * shard-parallel kernel uses.  The API-level behavior (ordering,
 * pooling, panics) is covered by event_queue_test.cc; these tests pin
 * the level boundaries where a wheel bug would hide.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/sched_key.hh"

namespace vpc
{
namespace
{

TEST(TimingWheel, FarFutureEventCascadesFromOverflow)
{
    EventQueue q;
    // Beyond the L1 horizon (kL0Slots * kL1Slots cycles): must park
    // in the overflow heap, then cascade through L1 and L0 and still
    // fire at exactly the right cycle.
    const Cycle far = static_cast<Cycle>(EventQueue::kL0Slots) *
                      EventQueue::kL1Slots + 12345;
    std::vector<Cycle> fired;
    q.schedule(far, [&] { fired.push_back(far); });
    q.schedule(3, [&] { fired.push_back(3); });
    EXPECT_EQ(q.nextEventCycle(), 3u);

    EXPECT_EQ(q.runDue(3), 1u);
    EXPECT_EQ(q.nextEventCycle(), far);
    // Jump straight to the due cycle, as the skip kernel does.
    EXPECT_EQ(q.runDue(far), 1u);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[1], far);
    EXPECT_TRUE(q.empty());
    EXPECT_GT(q.cascades(), 0u);
}

TEST(TimingWheel, MidRangeEventUsesL1Block)
{
    EventQueue q;
    // Within the L1 horizon but outside the current L0 block.
    const Cycle mid = EventQueue::kL0Slots * 3 + 17;
    bool hit = false;
    q.schedule(mid, [&] { hit = true; });
    EXPECT_EQ(q.nextEventCycle(), mid);
    EXPECT_EQ(q.runDue(mid), 1u);
    EXPECT_TRUE(hit);
    EXPECT_TRUE(q.empty());
}

TEST(TimingWheel, DenseAndSparseMixFiresInOrder)
{
    EventQueue q;
    std::vector<Cycle> fired;
    // One event per region: current block, next blocks, overflow —
    // scheduled out of order.
    std::vector<Cycle> whens = {
        70000, 5, 600, 511, 512, 65535, 65536, 130000, 1, 0,
    };
    for (Cycle w : whens)
        q.schedule(w, [&fired, w] { fired.push_back(w); });
    Cycle now = 0;
    while (!q.empty()) {
        now = q.nextEventCycle();
        q.runDue(now);
    }
    std::vector<Cycle> sorted = whens;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(fired, sorted);
}

TEST(TimingWheel, SameCycleFifoAcrossLevels)
{
    EventQueue q;
    // Both land at cycle 600: one direct (scheduled when 600 is in
    // L1), one after an advance puts 600 in L0.  Insertion order must
    // survive the cascade.
    std::vector<int> order;
    q.schedule(600, [&] { order.push_back(1); });
    q.schedule(100, [&] {
        q.schedule(600, [&] { order.push_back(2); });
    });
    q.runDue(100);
    q.runDue(600);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimingWheel, RescheduleFromCallbackSameCycleRuns)
{
    EventQueue q;
    int runs = 0;
    q.schedule(50, [&] {
        ++runs;
        q.schedule(50, [&] { ++runs; });
    });
    // Same-cycle reschedule fires in the same runDue invocation
    // (next round), exactly like the heap-based queue did.
    EXPECT_EQ(q.runDue(50), 2u);
    EXPECT_EQ(runs, 2);
}

TEST(TimingWheel, KeyedScheduleOrdersByCompositeKey)
{
    EventQueue q;
    std::vector<int> order;
    // Same fire cycle; keys differ in (schedCycle, phase, x, y).
    // scheduleKeyed must order by key, not insertion.
    SchedKey a, b, c;
    a.when = b.when = c.when = 40;
    a.schedCycle = 10;
    a.phase = static_cast<std::uint8_t>(SchedPhase::UncoreTick);
    b.schedCycle = 10;
    b.phase = static_cast<std::uint8_t>(SchedPhase::CpuTick);
    b.x = 1;
    c.schedCycle = 9;
    c.phase = static_cast<std::uint8_t>(SchedPhase::UncoreTick);
    q.scheduleKeyed(a, [&] { order.push_back(0); });
    q.scheduleKeyed(b, [&] { order.push_back(1); });
    q.scheduleKeyed(c, [&] { order.push_back(2); });
    q.runDue(40);
    // c (earlier schedCycle) first, then b (CpuTick < UncoreTick),
    // then a.
    EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(TimingWheel, KeySourceStampsTickAndFiringContexts)
{
    EventQueue q;
    KeySource ks;
    ks.tickPhase = static_cast<std::uint8_t>(SchedPhase::CpuTick);
    ks.rank = 3;
    q.setKeySource(&ks);

    ks.now = 7;
    SchedKey tick_key = q.makeKey(20);
    EXPECT_EQ(tick_key.when, 20u);
    EXPECT_EQ(tick_key.schedCycle, 7u);
    EXPECT_EQ(tick_key.phase,
              static_cast<std::uint8_t>(SchedPhase::CpuTick));
    EXPECT_EQ(tick_key.x, 3u);

    // From inside a firing callback, keys switch to the event phase
    // with the firing index as x.
    SchedKey child{};
    q.schedule(8, [&] { child = q.makeKey(30); });
    ks.now = 8;
    q.runDue(8);
    EXPECT_EQ(child.when, 30u);
    EXPECT_EQ(child.schedCycle, 8u);
    EXPECT_EQ(child.phase,
              static_cast<std::uint8_t>(SchedPhase::Event));
    EXPECT_EQ(child.x, 0u); // first event fired this cycle
    // Sequence numbers came from the source, strictly increasing.
    EXPECT_LT(tick_key.y, child.y);
}

TEST(TimingWheel, FiringIndexCountsAcrossCycleFireOrder)
{
    EventQueue q;
    KeySource ks;
    ks.tickPhase = static_cast<std::uint8_t>(SchedPhase::UncoreTick);
    q.setKeySource(&ks);
    std::vector<std::uint64_t> xs;
    ks.now = 4;
    q.schedule(5, [&] { xs.push_back(q.makeKey(9).x); });
    q.schedule(5, [&] { xs.push_back(q.makeKey(9).x); });
    q.schedule(5, [&] { xs.push_back(q.makeKey(9).x); });
    ks.now = 5;
    q.runDue(5);
    // Each firing event sees its own position in the fire order.
    EXPECT_EQ(xs, (std::vector<std::uint64_t>{0, 1, 2}));
}

} // namespace
} // namespace vpc
