/**
 * @file
 * In-process daemon tests: the full submit -> claim -> execute ->
 * settle path, including the robustness contract — results bitwise
 * identical to daemon-less execution, poison jobs bounded by retry
 * and quarantined, deadlines enforced, undecodable records rejected,
 * exhausted journal history honored on restart, and deterministic
 * service-fault injection leaving the spool consistent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/client.hh"
#include "service/daemon.hh"
#include "service/job_codec.hh"
#include "service/journal.hh"
#include "service/spool.hh"
#include "sim/format.hh"
#include "system/experiment.hh"
#include "system/options.hh"

namespace vpc
{
namespace
{

std::string
testDir(const std::string &name)
{
    std::string dir =
        format("{}/vpc_daemon_{}", ::testing::TempDir(), name);
    std::filesystem::remove_all(dir);
    return dir;
}

/** A cheap two-thread job; @p seed varies the content identity. */
RunJob
smallJob(std::uint64_t seed = 1)
{
    RunJob job;
    job.config = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    job.workloads = {WorkloadKey{"loads", threadBaseAddr(0), seed},
                     WorkloadKey{"stores", threadBaseAddr(1), seed + 1}};
    job.warmup = 500;
    job.measure = 2'000;
    return job;
}

void
expectSameRecord(const RunRecord &a, const RunRecord &b)
{
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.ipc, b.stats.ipc); // exact: bit-identical runs
    EXPECT_EQ(a.stats.instrs, b.stats.instrs);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_EQ(a.kernel.cyclesExecuted.value(),
              b.kernel.cyclesExecuted.value());
    EXPECT_EQ(a.kernel.eventsFired.value(), b.kernel.eventsFired.value());
}

/** Drive runOnce() until the spool drains or @p max_ms elapses. */
void
drain(SweepDaemon &daemon, std::uint64_t max_ms = 30'000)
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(max_ms);
    while (std::chrono::steady_clock::now() < until) {
        daemon.runOnce();
        if (daemon.spool().list(JobState::Pending).empty() &&
            daemon.spool().list(JobState::Running).empty())
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "spool did not drain within " << max_ms << " ms";
}

TEST(SweepDaemon, CompletesJobsBitIdenticalToLocalExecution)
{
    std::string dir = testDir("bitident");
    ServiceClient client(dir);
    std::uint64_t digest = client.submit(smallJob());
    EXPECT_EQ(client.spool().state(digest), JobState::Pending);

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 2;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    drain(daemon);

    EXPECT_EQ(client.spool().state(digest), JobState::Done);
    RunResult served;
    ASSERT_TRUE(client.fetch(digest, served));

    // Daemon-less execution of the same job, separate cache.
    RunCache local("");
    RunResult direct = runAndMeasureCached(smallJob(), &local);
    expectSameRecord(served.record, direct.record);

    EXPECT_EQ(daemon.stats().completed, 1u);
    EXPECT_EQ(daemon.stats().claimed, 1u);
    EXPECT_EQ(daemon.stats().failures, 0u);
}

TEST(SweepDaemon, DuplicateSubmitsCollapseToOneExecution)
{
    std::string dir = testDir("dedupe");
    ServiceClient client(dir);
    std::uint64_t d1 = client.submit(smallJob());
    std::uint64_t d2 = client.submit(smallJob()); // same content
    std::uint64_t d3 = client.submit(smallJob(7)); // different content
    EXPECT_EQ(d1, d2);
    EXPECT_NE(d1, d3);

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    drain(daemon);

    // Two unique jobs executed, not three.
    EXPECT_EQ(daemon.stats().claimed, 2u);
    EXPECT_EQ(daemon.stats().completed, 2u);

    // Submitting a finished job again is a no-op answered by done/.
    EXPECT_EQ(client.spool().submit(d1, "ignored"), JobState::Done);
}

TEST(SweepDaemon, PoisonJobIsRetriedThenQuarantined)
{
    std::string dir = testDir("poison");
    ServiceClient client(dir);
    RunJob bad = smallJob();
    bad.workloads[0].spec = "no-such-benchmark";
    std::uint64_t digest = client.submit(bad);

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.maxAttempts = 3;
    cfg.backoffMs = 1; // keep the retry loop fast
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    drain(daemon);

    EXPECT_EQ(client.spool().state(digest), JobState::Failed);
    EXPECT_EQ(daemon.stats().failures, 3u);
    EXPECT_EQ(daemon.stats().retried, 2u);
    EXPECT_EQ(daemon.stats().quarantined, 1u);
    std::string reason = client.failReason(digest);
    EXPECT_NE(reason.find("quarantined after 3 attempt(s)"),
              std::string::npos)
        << reason;
}

TEST(SweepDaemon, DeadlineCancelsARunawayJob)
{
    std::string dir = testDir("deadline");
    ServiceClient client(dir);
    RunJob runaway = smallJob();
    runaway.measure = 200'000'000; // far beyond the deadline
    std::uint64_t digest = client.submit(runaway);

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.deadlineMs = 50;
    cfg.maxAttempts = 1; // first deadline hit quarantines
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    drain(daemon);

    EXPECT_EQ(client.spool().state(digest), JobState::Failed);
    EXPECT_EQ(daemon.stats().timeouts, 1u);
    EXPECT_EQ(daemon.stats().quarantined, 1u);
}

TEST(SweepDaemon, UndecodableRecordIsRejectedNotRetried)
{
    std::string dir = testDir("undecodable");
    JobSpool spool(dir);
    spool.submit(0xbad, "this is not a job record");

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    daemon.runOnce();

    EXPECT_EQ(daemon.spool().state(0xbad), JobState::Failed);
    EXPECT_EQ(daemon.stats().rejected, 1u);
    EXPECT_EQ(daemon.stats().quarantined, 1u);
    EXPECT_EQ(daemon.stats().completed, 0u);
    EXPECT_NE(daemon.spool().failReason(0xbad).find("undecodable"),
              std::string::npos);
}

TEST(SweepDaemon, JournalExhaustionQuarantinesOnClaim)
{
    // A daemon that crashed between a job's last failure and its
    // quarantine transition leaves a pending job with maxAttempts
    // "start" lines in the journal; the restarted daemon must
    // quarantine it on claim instead of running it a fourth time.
    std::string dir = testDir("exhausted");
    ServiceClient client(dir);
    std::uint64_t digest = client.submit(smallJob());
    {
        JobSpool spool(dir); // shares the journal location
        JobJournal journal(dir + "/journal.log");
        (void)spool;
        journal.append(digest, "start");
        journal.append(digest, "start");
        journal.append(digest, "start");
    }

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.maxAttempts = 3;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    daemon.runOnce();

    EXPECT_EQ(client.spool().state(digest), JobState::Failed);
    EXPECT_EQ(daemon.stats().quarantined, 1u);
    EXPECT_EQ(daemon.stats().completed, 0u);
    EXPECT_NE(client.failReason(digest).find("journal replay"),
              std::string::npos);
}

TEST(SweepDaemon, StartRecoversOrphanedRunningJobs)
{
    std::string dir = testDir("orphanstart");
    ServiceClient client(dir);
    std::uint64_t digest = client.submit(smallJob());
    {
        // A previous daemon claimed the job and then "crashed".
        JobSpool spool(dir);
        std::string text;
        ASSERT_TRUE(spool.claimJob(digest, text));
    }

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    EXPECT_EQ(daemon.stats().orphansRecovered, 1u);
    drain(daemon);
    EXPECT_EQ(client.spool().state(digest), JobState::Done);
    EXPECT_EQ(daemon.stats().completed, 1u);
}

TEST(SweepDaemon, SecondDaemonIsFencedOut)
{
    std::string dir = testDir("fence");
    DaemonConfig cfg;
    cfg.spoolDir = dir;
    SweepDaemon first(cfg);
    ASSERT_TRUE(first.start());
    // Same process, but the spool is already owned — the pid file
    // belongs to us, so a second in-process daemon is NOT fenced
    // (fencing is per-process); exercise the real fence via ownerPid.
    EXPECT_EQ(first.spool().ownerPid(),
              static_cast<std::uint64_t>(::getpid()));
}

TEST(SweepDaemon, GracefulStopRepublishesUnclaimedWork)
{
    std::string dir = testDir("stop");
    ServiceClient client(dir);
    // More jobs than lanes so some are still pending at stop time.
    for (std::uint64_t s = 1; s <= 6; ++s)
        client.submit(smallJob(s * 10));

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 1;
    cfg.pollMs = 1;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());

    std::atomic<bool> stop{false};
    std::thread runner([&] { daemon.run(stop); });
    // Let it make some progress (watch the spool, not the stats —
    // the stats struct belongs to the runner thread), then stop.
    while (daemon.spool().list(JobState::Done).empty())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stop.store(true);
    runner.join();

    // Invariant after a graceful stop: nothing claimed, nothing lost —
    // every job is either done or back in pending/.
    EXPECT_TRUE(daemon.spool().list(JobState::Running).empty());
    EXPECT_EQ(daemon.spool().list(JobState::Done).size() +
                  daemon.spool().list(JobState::Pending).size(),
              6u);
    EXPECT_GE(daemon.stats().completed, 1u);
    // And the spool is released for a successor.
    EXPECT_EQ(daemon.spool().ownerPid(), 0u);
}

TEST(SweepDaemon, ClientRunJobDegradesToLocalWithoutADaemon)
{
    std::string dir = testDir("degrade");
    ServiceClient client(dir);
    EXPECT_FALSE(client.daemonAlive());

    ServedBy served = ServedBy::Daemon;
    RunResult r = client.runJob(smallJob(), &served);
    EXPECT_EQ(served, ServedBy::Local);

    RunCache local("");
    RunResult direct = runAndMeasureCached(smallJob(), &local);
    expectSameRecord(r.record, direct.record);
}

TEST(SweepDaemon, ClientRunJobRoundTripsThroughALiveDaemon)
{
    std::string dir = testDir("roundtrip");
    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.pollMs = 1;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());

    std::atomic<bool> stop{false};
    std::thread runner([&] { daemon.run(stop); });

    ServiceClient client(dir, "", 5);
    EXPECT_TRUE(client.daemonAlive());
    ServedBy served = ServedBy::Local;
    RunResult r = client.runJob(smallJob(), &served);
    // The daemon binds its socket transport by default, so a live
    // round trip is served over the socket (pushed completion).
    EXPECT_EQ(served, ServedBy::Socket);

    // A quarantined job surfaces as a client-side error.
    RunJob bad = smallJob();
    bad.workloads[0].spec = "no-such-benchmark";
    EXPECT_THROW(client.runJob(bad), std::runtime_error);

    stop.store(true);
    runner.join();

    RunCache local("");
    RunResult direct = runAndMeasureCached(smallJob(), &local);
    expectSameRecord(r.record, direct.record);
    EXPECT_GE(daemon.stats().completed, 1u);
    EXPECT_EQ(daemon.stats().quarantined, 1u);
}

TEST(SweepDaemon, InjectedFaultsLeaveTheSpoolConsistent)
{
    std::string dir = testDir("faults");
    ServiceClient client(dir);
    std::vector<std::uint64_t> digests;
    for (std::uint64_t s = 1; s <= 5; ++s)
        digests.push_back(client.submit(smallJob(s * 100)));

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 2;
    cfg.deadlineMs = 200; // stall faults need a deadline to resolve
    cfg.maxAttempts = 10; // generous: faults should not quarantine
    cfg.backoffMs = 1;
    cfg.injectFaults = true;
    cfg.faultRate = 0.8;
    cfg.faultSeed = 7;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    drain(daemon, 60'000);

    // Whatever faults hit, every job must end terminal and accounted.
    EXPECT_GE(daemon.stats().faultsInjected, 1u);
    std::size_t done = 0, failed = 0;
    for (std::uint64_t d : digests) {
        JobState st = client.spool().state(d);
        EXPECT_TRUE(st == JobState::Done || st == JobState::Failed)
            << jobStateName(st);
        (st == JobState::Done ? done : failed)++;
    }
    EXPECT_EQ(done + failed, digests.size());
    EXPECT_EQ(daemon.stats().completed, done);
    EXPECT_EQ(daemon.stats().quarantined, failed);

    // Completed jobs replay bit-identical to daemon-less execution
    // even though their attempts were stalled/failed/abandoned.
    for (std::uint64_t s = 1; s <= 5; ++s) {
        std::uint64_t d = digests[s - 1];
        if (client.spool().state(d) != JobState::Done)
            continue;
        RunResult served;
        ASSERT_TRUE(client.fetch(d, served));
        RunCache local("");
        RunResult direct = runAndMeasureCached(smallJob(s * 100), &local);
        expectSameRecord(served.record, direct.record);
    }

    // The journal replays despite injected truncations: no crash, and
    // surviving history still parses.
    JobJournal journal(dir + "/journal.log");
    (void)journal.replay();
}

} // namespace
} // namespace vpc
