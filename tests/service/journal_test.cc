/**
 * @file
 * Journal tests: the append-only event log must replay exactly what
 * was written, skip torn or foreign lines instead of misreading them,
 * and count attempts ("start" events) per job across daemon restarts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "service/journal.hh"
#include "sim/format.hh"

namespace vpc
{
namespace
{

std::string
testPath(const std::string &name)
{
    std::string path =
        format("{}/vpc_journal_{}.log", ::testing::TempDir(), name);
    std::remove(path.c_str());
    // Sweep sealed segments from a previous run of the same test.
    for (int i = 1; i < 64; ++i)
        std::remove(format("{}.{}", path, i).c_str());
    return path;
}

TEST(JobJournal, AppendThenReplay)
{
    std::string path = testPath("roundtrip");
    JobJournal j(path);
    j.append(0x1, "start");
    j.append(0x1, "done");
    j.append(0xabcdef0123456789ull, "start");

    auto events = j.replay();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].digest, 0x1u);
    EXPECT_EQ(events[0].name, "start");
    EXPECT_EQ(events[1].name, "done");
    EXPECT_EQ(events[2].digest, 0xabcdef0123456789ull);
}

TEST(JobJournal, ReplaySurvivesReopen)
{
    std::string path = testPath("reopen");
    {
        JobJournal j(path);
        j.append(0x5, "start");
        j.append(0x5, "fail");
        j.append(0x5, "requeue");
    }
    // A restarted daemon opens the same file and sees the history.
    JobJournal j(path);
    j.append(0x5, "start");
    auto attempts = j.replayAttempts();
    EXPECT_EQ(attempts[0x5], 2u);
    EXPECT_EQ(j.replay().size(), 4u);
}

TEST(JobJournal, ReplayAttemptsCountsStartsOnly)
{
    std::string path = testPath("attempts");
    JobJournal j(path);
    j.append(0xa, "start");
    j.append(0xa, "fail");
    j.append(0xa, "requeue");
    j.append(0xa, "start");
    j.append(0xa, "done");
    j.append(0xb, "recover");

    auto attempts = j.replayAttempts();
    EXPECT_EQ(attempts[0xa], 2u);
    EXPECT_EQ(attempts.count(0xb), 0u); // no starts: not an attempt
}

TEST(JobJournal, TornFinalLineIsSkippedNotMisread)
{
    std::string path = testPath("torn");
    {
        JobJournal j(path);
        j.append(0x1, "start");
        j.append(0x2, "start");
    }
    // Simulate a crash mid-append: chop the file inside the last line
    // (no terminating newline).
    std::uintmax_t size = std::filesystem::file_size(path);
    ASSERT_EQ(::truncate(path.c_str(), size - 3), 0);

    JobJournal j(path);
    auto events = j.replay();
    ASSERT_EQ(events.size(), 1u); // only the intact first line
    EXPECT_EQ(events[0].digest, 0x1u);

    // Appending after the torn tail produces a merged garbage line;
    // it too is skipped, and later lines still parse.
    j.append(0x3, "done");
    events = j.replay();
    ASSERT_EQ(events.size(), 1u);
    j.append(0x4, "start");
    events = j.replay();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].digest, 0x4u);
}

TEST(JobJournal, GarbageLinesAreSkipped)
{
    std::string path = testPath("garbage");
    {
        std::ofstream f(path);
        f << "not a journal line\n";
        f << "0123456789abcdef start\n";        // valid
        f << "0123456789abcdeZ start\n";        // bad hex
        f << "0123456789abcdef\n";              // missing event
        f << "0123456789abcdef st4rt\n";        // non-alpha event
        f << "0123456789abcdefdone\n";          // missing separator
        f << "\n";
        f << "0123456789abcdef done\n";         // valid
    }
    JobJournal j(path);
    auto events = j.replay();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "start");
    EXPECT_EQ(events[1].name, "done");
    EXPECT_EQ(events[0].digest, 0x0123456789abcdefull);
}

TEST(JobJournal, MissingFileReplaysEmpty)
{
    std::string path = testPath("fresh");
    JobJournal j(path);
    EXPECT_TRUE(j.replay().empty());
    EXPECT_TRUE(j.replayAttempts().empty());
}

TEST(JobJournal, RotationSealsSegmentsAndReplaySpansThemAll)
{
    std::string path = testPath("rotate");
    // Each line is 16 + 1 + len(event) + 1 bytes; a 64-byte threshold
    // rotates every couple of appends.
    JobJournal j(path, 64);
    for (std::uint64_t i = 0; i < 20; ++i)
        j.append(0xc0de, "start");

    EXPECT_GE(j.segments().size(), 2u);
    // The active file stays under (threshold + one line).
    EXPECT_LT(std::filesystem::file_size(path), 64u + 32u);
    // History is intact across every sealed segment.
    EXPECT_EQ(j.replay().size(), 20u);
    EXPECT_EQ(j.replayAttempts()[0xc0de], 20u);
}

TEST(JobJournal, RotationResumesNumberingAcrossReopen)
{
    std::string path = testPath("rotate_reopen");
    std::size_t sealed_before = 0;
    {
        JobJournal j(path, 64);
        for (std::uint64_t i = 0; i < 10; ++i)
            j.append(0x1, "start");
        sealed_before = j.segments().size();
        ASSERT_GE(sealed_before, 1u);
    }
    // A restarted daemon must not overwrite sealed history: new
    // segments continue the numbering and replay sees everything.
    JobJournal j(path, 64);
    for (std::uint64_t i = 0; i < 10; ++i)
        j.append(0x1, "start");
    EXPECT_GT(j.segments().size(), sealed_before);
    EXPECT_EQ(j.replayAttempts()[0x1], 20u);
}

TEST(JobJournal, ReopenedJournalCountsExistingBytesTowardRotation)
{
    std::string path = testPath("rotate_size_resume");
    // Four "start" lines = 4 x 23 = 92 bytes: just under a 100-byte
    // threshold, so the first life seals nothing.
    {
        JobJournal j(path, 100);
        for (std::uint64_t i = 0; i < 4; ++i)
            j.append(0x9, "start");
        ASSERT_TRUE(j.segments().empty());
    }
    // A restarted daemon must resume the size accounting from the
    // bytes already on disk (ftell right after fopen "ab" reports 0
    // until the first write): the very next append crosses the
    // threshold and rotates — not 100 bytes later.
    JobJournal j(path, 100);
    j.append(0x9, "start");
    EXPECT_EQ(j.segments().size(), 1u);
    EXPECT_EQ(j.replayAttempts()[0x9], 5u);
}

TEST(JobJournal, SegmentPruningKeepsOnlyTheNewest)
{
    std::string path = testPath("prune");
    JobJournal j(path, 64, 2);
    for (std::uint64_t i = 0; i < 40; ++i)
        j.append(0xf00d, "start");

    auto segs = j.segments();
    ASSERT_EQ(segs.size(), 2u);
    // The survivors are the newest (highest-numbered) ones, so the
    // retained history is a strict suffix: fewer starts than written,
    // but every surviving line parses.
    unsigned counted = j.replayAttempts()[0xf00d];
    EXPECT_GT(counted, 0u);
    EXPECT_LT(counted, 40u);
}

TEST(JobJournal, UnrotatedJournalHasNoSegments)
{
    std::string path = testPath("norotate");
    JobJournal j(path); // rotate_bytes = 0: never rotate
    for (std::uint64_t i = 0; i < 50; ++i)
        j.append(0x2, "start");
    EXPECT_TRUE(j.segments().empty());
    EXPECT_EQ(j.replayAttempts()[0x2], 50u);
}

} // namespace
} // namespace vpc
