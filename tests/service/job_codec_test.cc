/**
 * @file
 * Job codec tests: a spooled job file must round-trip to exactly the
 * job that was submitted — same digest, hence same cached result —
 * and every damaged or inconsistent record must fail decode instead
 * of executing as a different job (or killing the daemon).
 */

#include <gtest/gtest.h>

#include <string>

#include "service/job_codec.hh"
#include "system/experiment.hh"
#include "system/options.hh"

namespace vpc
{
namespace
{

RunJob
sampleJob()
{
    RunJob job;
    job.config = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    job.config.shares = {QosShare{0.75, 0.5}, QosShare{0.25, 0.5}};
    job.workloads = {WorkloadKey{"art", threadBaseAddr(0), 1},
                     WorkloadKey{"trace:/tmp/x.trace",
                                 threadBaseAddr(1), 2}};
    job.warmup = 1'000;
    job.measure = 5'000;
    return job;
}

TEST(JobCodec, RoundTripPreservesDigest)
{
    RunJob job = sampleJob();
    std::string text = encodeJob(job);
    RunJob back;
    ASSERT_TRUE(decodeJob(text, back));
    EXPECT_EQ(runDigest(job), runDigest(back));
    EXPECT_EQ(back.workloads.size(), 2u);
    EXPECT_EQ(back.workloads[0].spec, "art");
    EXPECT_EQ(back.workloads[1].spec, "trace:/tmp/x.trace");
    EXPECT_EQ(back.workloads[1].base, threadBaseAddr(1));
    EXPECT_EQ(back.warmup, 1'000u);
    EXPECT_EQ(back.measure, 5'000u);
    EXPECT_EQ(back.config.shares[0].phi, 0.75);
    EXPECT_EQ(back.config.arbiterPolicy, ArbiterPolicy::Vpc);
}

TEST(JobCodec, EncodeIsByteStable)
{
    // encode normalizes through validate(), so encode(decode(x))
    // reproduces x byte for byte — resubmitting a decoded job lands
    // on the same spool file.
    RunJob job = sampleJob();
    std::string text = encodeJob(job);
    RunJob back;
    ASSERT_TRUE(decodeJob(text, back));
    EXPECT_EQ(encodeJob(back), text);
}

TEST(JobCodec, NonDefaultScalarsSurvive)
{
    RunJob job = sampleJob();
    job.config.l2.banks = 4;
    job.config.core.lsuRejectProb = 0.123456789;
    job.config.kernelSkip = false;
    job.config.mem.schedulerPolicy = ArbiterPolicy::RowFcfs;
    job.config.verify.watchdogCycles = 12'345;
    RunJob back;
    ASSERT_TRUE(decodeJob(encodeJob(job), back));
    EXPECT_EQ(back.config.l2.banks, 4u);
    EXPECT_EQ(back.config.core.lsuRejectProb, 0.123456789);
    EXPECT_FALSE(back.config.kernelSkip);
    EXPECT_EQ(back.config.mem.schedulerPolicy, ArbiterPolicy::RowFcfs);
    EXPECT_EQ(back.config.verify.watchdogCycles, 12'345u);
    EXPECT_EQ(runDigest(job), runDigest(back));
}

TEST(JobCodec, RejectsDamage)
{
    std::string text = encodeJob(sampleJob());
    RunJob out;

    // Truncation at any point.
    for (std::size_t cut : {text.size() / 4, text.size() / 2,
                            text.size() - 2}) {
        EXPECT_FALSE(decodeJob(text.substr(0, cut), out));
    }

    // A flipped config value no longer matches the embedded digest.
    std::string tampered = text;
    std::size_t pos = tampered.find("\"cfg\": [");
    ASSERT_NE(pos, std::string::npos);
    pos += 8;
    tampered[pos] = tampered[pos] == '4' ? '8' : '4';
    EXPECT_FALSE(decodeJob(tampered, out));

    // Garbage and empty input.
    EXPECT_FALSE(decodeJob("", out));
    EXPECT_FALSE(decodeJob("not a record", out));
    EXPECT_FALSE(decodeJob("{\"svc_schema\": 999}", out));
}

TEST(JobCodec, RejectsInsaneConfigWithoutDying)
{
    // Craft a record whose fields parse but whose config is
    // internally inconsistent (numProcessors = 0).  decode must
    // return false — not exit the process through validate().
    RunJob job = sampleJob();
    std::string text = encodeJob(job);
    // numProcessors is the first cfg array element ("...\"cfg\": [2, ").
    std::size_t pos = text.find("\"cfg\": [");
    ASSERT_NE(pos, std::string::npos);
    pos += 8;
    ASSERT_EQ(text[pos], '2');
    text[pos] = '0';
    RunJob out;
    EXPECT_FALSE(decodeJob(text, out));
}

} // namespace
} // namespace vpc
