/**
 * @file
 * Socket-transport tests: framed submit/ack/completion round trips
 * against a live in-process daemon, terminal-state acks for duplicate
 * submits, watch-after-settle pushes, the poll(2) backend, protocol
 * error handling, heartbeat liveness — and the reconnect drill: a
 * SIGKILLed daemon mid-stream, the client detecting the dead peer and
 * degrading to spool/local, a successor draining the spool, results
 * byte-identical throughout.  Fork-based tests are skipped under
 * ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/client.hh"
#include "service/daemon.hh"
#include "service/job_codec.hh"
#include "service/spool.hh"
#include "service/transport.hh"
#include "sim/format.hh"
#include "system/experiment.hh"
#include "system/options.hh"

#if defined(__SANITIZE_THREAD__)
#define VPC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VPC_TSAN 1
#endif
#endif
#ifndef VPC_TSAN
#define VPC_TSAN 0
#endif

namespace vpc
{
namespace
{

namespace fs = std::filesystem;

std::string
testDir(const std::string &name)
{
    std::string dir =
        format("{}/vpc_transport_{}", ::testing::TempDir(), name);
    fs::remove_all(dir);
    return dir;
}

/** A cheap two-thread job; @p seed varies the content identity. */
RunJob
smallJob(std::uint64_t seed, Cycle measure = 2'000)
{
    RunJob job;
    job.config = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    job.workloads = {WorkloadKey{"loads", threadBaseAddr(0), seed},
                     WorkloadKey{"stores", threadBaseAddr(1), seed + 1}};
    job.warmup = 500;
    job.measure = measure;
    return job;
}

void
expectSameRecord(const RunRecord &a, const RunRecord &b)
{
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.ipc, b.stats.ipc);
    EXPECT_EQ(a.stats.instrs, b.stats.instrs);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_EQ(a.kernel.cyclesExecuted.value(),
              b.kernel.cyclesExecuted.value());
    EXPECT_EQ(a.kernel.eventsFired.value(),
              b.kernel.eventsFired.value());
}

/** An in-process daemon serving @p dir on a background thread. */
struct LiveDaemon
{
    explicit LiveDaemon(const std::string &dir,
                        std::uint64_t heartbeat_ms = 2000)
    {
        cfg.spoolDir = dir;
        cfg.workers = 1;
        cfg.pollMs = 1;
        cfg.heartbeatMs = heartbeat_ms;
        daemon = std::make_unique<SweepDaemon>(cfg);
        if (!daemon->start())
            return;
        runner = std::thread([this] { daemon->run(stop); });
    }

    ~LiveDaemon()
    {
        stopNow();
    }

    void
    stopNow()
    {
        if (runner.joinable()) {
            stop.store(true);
            runner.join();
        }
    }

    DaemonConfig cfg;
    std::unique_ptr<SweepDaemon> daemon;
    std::atomic<bool> stop{false};
    std::thread runner;
};

TEST(Transport, BatchSubmitAcksAndPushesCompletions)
{
    std::string dir = testDir("batch");
    LiveDaemon live(dir);
    ASSERT_TRUE(live.daemon->transport());

    TransportConfig tc;
    tc.socketPath = defaultSocketPath(dir);
    TransportClient client(tc);
    ASSERT_TRUE(client.connect());
    EXPECT_NE(client.daemonPid(), 0u);

    constexpr std::uint64_t kJobs = 3;
    std::vector<std::string> encoded;
    std::vector<std::uint64_t> digests;
    for (std::uint64_t s = 0; s < kJobs; ++s) {
        RunJob job = smallJob(s * 10 + 1);
        encoded.push_back(encodeJob(job));
        digests.push_back(runDigest(job));
    }

    std::vector<TransportClient::Ack> acks;
    ASSERT_TRUE(client.submitBatch(encoded, acks));
    ASSERT_EQ(acks.size(), kJobs);
    for (std::uint64_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(acks[i].digest, digests[i]) << "index-aligned acks";
        EXPECT_NE(acks[i].state, JobState::Absent);
    }

    // Every submitted digest gets a pushed completion, no polling.
    std::vector<bool> done(kJobs, false);
    for (std::uint64_t got = 0; got < kJobs;) {
        TransportClient::Completion comp;
        ASSERT_TRUE(client.nextCompletion(comp, 60'000));
        ASSERT_EQ(comp.state, JobState::Done) << comp.reason;
        for (std::uint64_t i = 0; i < kJobs; ++i)
            if (digests[i] == comp.digest && !done[i]) {
                done[i] = true;
                ++got;
            }
    }

    // Results are bit-identical to daemon-less execution.
    live.stopNow();
    RunCache store(dir + "/cache");
    for (std::uint64_t s = 0; s < kJobs; ++s) {
        RunRecord rec;
        ASSERT_TRUE(store.probe(digests[s], rec));
        RunCache scratch("");
        RunResult direct =
            runAndMeasureCached(smallJob(s * 10 + 1), &scratch);
        expectSameRecord(rec, direct.record);
    }
}

TEST(Transport, DuplicateSubmitIsAckedWithTerminalState)
{
    std::string dir = testDir("dup");
    LiveDaemon live(dir);

    TransportConfig tc;
    tc.socketPath = defaultSocketPath(dir);
    TransportClient client(tc);
    ASSERT_TRUE(client.connect());

    RunJob job = smallJob(77);
    std::vector<TransportClient::Ack> acks;
    ASSERT_TRUE(client.submitBatch({encodeJob(job)}, acks));
    TransportClient::Completion comp;
    ASSERT_TRUE(client.nextCompletion(comp, 60'000));
    EXPECT_EQ(comp.state, JobState::Done);

    // Resubmitting a settled job acks Done immediately — the daemon
    // neither recomputes nor pushes a second completion for it.
    ASSERT_TRUE(client.submitBatch({encodeJob(job)}, acks));
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0].state, JobState::Done);
    EXPECT_EQ(acks[0].digest, runDigest(job));
}

TEST(Transport, WatchOnSettledDigestCompletesImmediately)
{
    std::string dir = testDir("watch");
    LiveDaemon live(dir);

    TransportConfig tc;
    tc.socketPath = defaultSocketPath(dir);
    TransportClient submitter(tc);
    ASSERT_TRUE(submitter.connect());
    RunJob job = smallJob(5);
    std::vector<TransportClient::Ack> acks;
    ASSERT_TRUE(submitter.submitBatch({encodeJob(job)}, acks));
    TransportClient::Completion comp;
    ASSERT_TRUE(submitter.nextCompletion(comp, 60'000));

    // A second connection (a client from an earlier session) watches
    // the already-settled digest: the Complete frame arrives at once.
    TransportClient watcher(tc);
    ASSERT_TRUE(watcher.connect());
    ASSERT_TRUE(watcher.watch({runDigest(job)}));
    ASSERT_TRUE(watcher.nextCompletion(comp, 5'000));
    EXPECT_EQ(comp.digest, runDigest(job));
    EXPECT_EQ(comp.state, JobState::Done);
}

TEST(Transport, PollBackendServesTheSameRoundTrip)
{
    ::setenv("VPC_TRANSPORT_POLL", "1", 1);
    std::string dir = testDir("pollbackend");
    LiveDaemon live(dir);
    ASSERT_TRUE(live.daemon->transport());

    ServiceClient client(dir);
    ServedBy served = ServedBy::Local;
    RunResult r = client.runJob(smallJob(11), &served);
    EXPECT_EQ(served, ServedBy::Socket);

    RunCache scratch("");
    RunResult direct = runAndMeasureCached(smallJob(11), &scratch);
    expectSameRecord(r.record, direct.record);
    ::unsetenv("VPC_TRANSPORT_POLL");
}

TEST(Transport, SpoolOnlyDaemonServesViaPollingTier)
{
    std::string dir = testDir("spoolonly");
    LiveDaemon live(dir);
    // Rebuild the daemon without a socket.
    live.stopNow();
    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 1;
    cfg.pollMs = 1;
    cfg.socket = false;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    EXPECT_EQ(daemon.transport(), nullptr);
    std::atomic<bool> stop{false};
    std::thread runner([&] { daemon.run(stop); });

    ServiceClient client(dir, "", 5);
    ServedBy served = ServedBy::Local;
    RunResult r = client.runJob(smallJob(21), &served);
    EXPECT_EQ(served, ServedBy::Daemon) << "tier 2: spool polling";

    stop.store(true);
    runner.join();
    RunCache scratch("");
    RunResult direct = runAndMeasureCached(smallJob(21), &scratch);
    expectSameRecord(r.record, direct.record);
}

TEST(Transport, ProtocolErrorClosesTheConnection)
{
    std::string dir = testDir("proto");
    LiveDaemon live(dir);
    ASSERT_TRUE(live.daemon->transport());

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::string path = defaultSocketPath(dir);
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)), 0);

    // An insane frame length (> kMaxFrameBytes) is a protocol error:
    // the server must drop the connection, not allocate the buffer.
    std::uint32_t len = ~0u;
    ASSERT_EQ(::send(fd, &len, sizeof(len), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(len)));
    char buf[64];
    ssize_t n;
    do {
        n = ::recv(fd, buf, sizeof(buf), 0);
    } while (n > 0);
    EXPECT_EQ(n, 0) << "server should close on protocol error";
    ::close(fd);
}

TEST(Transport, HeartbeatsKeepIdleConnectionsAlive)
{
    std::string dir = testDir("heartbeat");
    LiveDaemon live(dir, /*heartbeat_ms=*/50);

    TransportConfig tc;
    tc.socketPath = defaultSocketPath(dir);
    tc.heartbeatMs = 50;
    TransportClient client(tc);
    ASSERT_TRUE(client.connect());

    // Idle for many heartbeat intervals.  nextCompletion() answers
    // the daemon's pings and sends the client's own, so neither side
    // declares the other dead.
    TransportClient::Completion comp;
    EXPECT_FALSE(client.nextCompletion(comp, 400)); // nothing settled
    EXPECT_TRUE(client.connected());

    // The connection still works end to end afterwards.
    std::vector<TransportClient::Ack> acks;
    ASSERT_TRUE(client.submitBatch({encodeJob(smallJob(31))}, acks));
    ASSERT_TRUE(client.nextCompletion(comp, 60'000));
    EXPECT_EQ(comp.state, JobState::Done);
}

TEST(Transport, SilentPeerIsClosedByServerHeartbeat)
{
    std::string dir = testDir("silent");
    LiveDaemon live(dir, /*heartbeat_ms=*/50);

    // A raw connection that never speaks: no Hello, no Pong.  The
    // server pings it, gets silence, and closes it after ~3 missed
    // intervals.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::string path = defaultSocketPath(dir);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)), 0);

    char buf[256];
    ssize_t n;
    do {
        n = ::recv(fd, buf, sizeof(buf), 0); // Pings, then EOF
    } while (n > 0);
    EXPECT_EQ(n, 0);
    ::close(fd);
    EXPECT_GE(live.daemon->transport()->stats().deadPeers.load(), 1u);
}

TEST(Transport, HardCapOverflowMidFrameIsDroppedSafely)
{
    // Regression drill for the connection-lifetime contract: a Watch
    // flood for settled digests makes the server queue reply frames
    // far faster than the (never reading) peer drains them, so the
    // write queue crosses the hard cap *inside* the Watch handler's
    // enqueue loop.  The server must condemn the connection without
    // destroying it under the handler's feet (historically a
    // use-after-free) and keep serving other peers.
    std::string dir = testDir("hardcap");
    fs::create_directories(dir);
    TransportConfig tc;
    tc.socketPath = dir + "/t.sock";
    tc.heartbeatMs = 0;
    tc.writeHighWater = 16u << 10;
    tc.writeHardCap = 64u << 10;
    std::string fat_reason(8 << 10, 'r');
    TransportServer server(
        tc,
        [](const std::string &, std::uint64_t &digest) {
            digest = 0;
            return JobState::Absent;
        },
        [&](std::uint64_t, std::string &reason_out) {
            reason_out = fat_reason;
            return JobState::Failed; // settled: replied immediately
        });
    ASSERT_TRUE(server.start());

    auto rawConnect = [&]() {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, tc.socketPath.c_str(),
                    tc.socketPath.size() + 1);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)), 0);
        return fd;
    };
    auto put32 = [](std::string &s, std::uint32_t v) {
        s.append(reinterpret_cast<const char *>(&v), sizeof(v));
    };

    // One Watch frame, 2048 digests: ~16 MiB of queued replies
    // against a 64 KiB cap.
    int fd = rawConnect();
    constexpr std::uint32_t kDigests = 2048;
    std::string frame;
    put32(frame, 1 + 4 + kDigests * 8);
    frame.push_back(5); // FrameType::Watch
    put32(frame, kDigests);
    for (std::uint64_t d = 1; d <= kDigests; ++d)
        frame.append(reinterpret_cast<const char *>(&d), sizeof(d));
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));

    // Drain whatever the server managed to push: it must end in EOF
    // (dropped connection), never a wedged or crashed server.
    char buf[64 * 1024];
    ssize_t n;
    do {
        n = ::recv(fd, buf, sizeof(buf), 0);
    } while (n > 0);
    EXPECT_EQ(n, 0) << "server should drop the overflowed connection";
    ::close(fd);
    EXPECT_GE(server.stats().dropped.load(), 1u);

    // The event loop survived: a fresh peer completes the handshake.
    int fd2 = rawConnect();
    std::string hello;
    put32(hello, 1 + 4);
    hello.push_back(1); // FrameType::Hello
    put32(hello, kTransportProtoVersion);
    ASSERT_EQ(::send(fd2, hello.data(), hello.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(hello.size()));
    std::string ack;
    while (ack.size() < 17) { // u32 len + type + u32 ver + u64 pid
        n = ::recv(fd2, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "server must still answer Hello";
        ack.append(buf, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(static_cast<std::uint8_t>(ack[4]), 2u); // HelloAck
    ::close(fd2);
}

TEST(TransportReconnect, SigkilledDaemonMidStreamDegradesThenDrains)
{
#if VPC_TSAN
    GTEST_SKIP() << "fork-based test: not supported under TSan";
#endif
    std::string dir = testDir("sigkill");
    // Spool the daemon's workload before forking (no threads yet).
    constexpr std::uint64_t kJobs = 8;
    std::vector<std::string> encoded;
    std::vector<std::uint64_t> digests;
    for (std::uint64_t s = 0; s < kJobs; ++s) {
        RunJob job = smallJob(s * 10 + 1, 20'000);
        encoded.push_back(encodeJob(job));
        digests.push_back(runDigest(job));
    }

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        DaemonConfig cfg;
        cfg.spoolDir = dir;
        cfg.workers = 1;
        cfg.pollMs = 1;
        SweepDaemon daemon(cfg);
        if (!daemon.start())
            ::_exit(2);
        std::atomic<bool> never{false};
        daemon.run(never);
        ::_exit(0);
    }

    // Connect and stream the batch in.
    TransportConfig tc;
    tc.socketPath = defaultSocketPath(dir);
    TransportClient client(tc);
    bool connected = false;
    for (int i = 0; i < 300 && !connected; ++i) {
        connected = client.connect();
        if (!connected)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(connected);
    std::vector<TransportClient::Ack> acks;
    ASSERT_TRUE(client.submitBatch(encoded, acks));
    ASSERT_EQ(acks.size(), kJobs);

    // Take at least one pushed completion mid-stream, then SIGKILL.
    TransportClient::Completion comp;
    ASSERT_TRUE(client.nextCompletion(comp, 60'000));
    EXPECT_EQ(comp.state, JobState::Done);
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status));

    // The client notices the dead peer (EOF, not a timeout).
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::seconds(30);
    while (!client.dead() &&
           std::chrono::steady_clock::now() < until)
        client.nextCompletion(comp, 100);
    EXPECT_TRUE(client.dead());

    // Tier degradation: with no live daemon the ServiceClient serves
    // the remaining jobs locally, bit-identically.
    ServiceClient fallback(dir);
    EXPECT_FALSE(fallback.daemonAlive());
    ServedBy served = ServedBy::Socket;
    RunJob probe_job = smallJob(1 * 10 + 1, 20'000);
    RunResult local = fallback.runJob(probe_job, &served);
    // (Served from cache if the victim finished it, else computed —
    // both are the Local tier.)
    EXPECT_EQ(served, ServedBy::Local);
    {
        RunCache scratch("");
        RunResult direct = runAndMeasureCached(probe_job, &scratch);
        expectSameRecord(local.record, direct.record);
    }

    // A successor daemon recovers the orphans and drains the spool.
    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 2;
    SweepDaemon successor(cfg);
    ASSERT_TRUE(successor.start());
    JobSpool spool(dir);
    auto drain_until = std::chrono::steady_clock::now() +
                       std::chrono::seconds(120);
    while ((!spool.list(JobState::Pending).empty() ||
            !spool.list(JobState::Running).empty()) &&
           std::chrono::steady_clock::now() < drain_until)
        successor.runOnce();
    EXPECT_EQ(spool.list(JobState::Done).size(), kJobs);
    EXPECT_TRUE(spool.list(JobState::Failed).empty());

    // Byte-identical results on every path for every job.
    RunCache store(dir + "/cache");
    for (std::uint64_t s = 0; s < kJobs; ++s) {
        RunRecord rec;
        ASSERT_TRUE(store.probe(digests[s], rec));
        RunCache scratch("");
        RunResult direct = runAndMeasureCached(
            smallJob(s * 10 + 1, 20'000), &scratch);
        expectSameRecord(rec, direct.record);
    }
}

} // namespace
} // namespace vpc
