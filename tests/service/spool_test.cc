/**
 * @file
 * Job spool tests: the directory-per-state machine must make every
 * lifecycle transition atomic and idempotent — duplicate submits are
 * no-ops, claims tolerate lost races, orphans are recoverable, and
 * the daemon.pid fence admits exactly one live owner.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "service/spool.hh"
#include "sim/format.hh"

namespace vpc
{
namespace
{

namespace fs = std::filesystem;

std::string
testDir(const std::string &name)
{
    std::string dir =
        format("{}/vpc_spool_{}", ::testing::TempDir(), name);
    fs::remove_all(dir);
    return dir;
}

TEST(JobSpool, SubmitClaimDoneLifecycle)
{
    JobSpool spool(testDir("lifecycle"));
    EXPECT_EQ(spool.state(0xabc), JobState::Absent);

    EXPECT_EQ(spool.submit(0xabc, "payload\n"), JobState::Pending);
    EXPECT_EQ(spool.state(0xabc), JobState::Pending);

    std::uint64_t digest = 0;
    std::string text;
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_EQ(digest, 0xabcu);
    EXPECT_EQ(text, "payload\n");
    EXPECT_EQ(spool.state(0xabc), JobState::Running);

    EXPECT_TRUE(spool.markDone(0xabc));
    EXPECT_EQ(spool.state(0xabc), JobState::Done);

    // Nothing left to claim; terminal transitions don't re-fire.
    EXPECT_FALSE(spool.claim(digest, text));
    EXPECT_FALSE(spool.markDone(0xabc));
}

TEST(JobSpool, DuplicateSubmitIsANoOp)
{
    JobSpool spool(testDir("dup"));
    EXPECT_EQ(spool.submit(1, "first\n"), JobState::Pending);
    // Re-submitting (even with different bytes) does not overwrite.
    EXPECT_EQ(spool.submit(1, "second\n"), JobState::Pending);

    std::uint64_t digest = 0;
    std::string text;
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_EQ(text, "first\n");

    // A submit against a running/done/failed job reports that state.
    EXPECT_EQ(spool.submit(1, "third\n"), JobState::Running);
    spool.markDone(1);
    EXPECT_EQ(spool.submit(1, "fourth\n"), JobState::Done);
    EXPECT_EQ(spool.state(1), JobState::Done);
}

TEST(JobSpool, ClaimOrderIsOldestFirst)
{
    JobSpool spool(testDir("order"));
    spool.submit(10, "a\n");
    spool.submit(11, "b\n");
    spool.submit(12, "c\n");

    // Identical mtimes are broken by name, so the order is stable
    // even when all three land within one clock tick.
    std::uint64_t digest = 0;
    std::string text;
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_EQ(digest, 10u);
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_EQ(digest, 11u);
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_EQ(digest, 12u);
    EXPECT_FALSE(spool.claim(digest, text));
}

TEST(JobSpool, ClaimJobTargetsOneDigest)
{
    JobSpool spool(testDir("claimjob"));
    spool.submit(20, "x\n");
    spool.submit(21, "y\n");

    std::string text;
    ASSERT_TRUE(spool.claimJob(21, text));
    EXPECT_EQ(text, "y\n");
    EXPECT_EQ(spool.state(21), JobState::Running);
    EXPECT_EQ(spool.state(20), JobState::Pending);

    // Already running: a second targeted claim fails.
    EXPECT_FALSE(spool.claimJob(21, text));
    // Absent digest: fails.
    EXPECT_FALSE(spool.claimJob(99, text));
}

TEST(JobSpool, RequeueAndRetry)
{
    JobSpool spool(testDir("requeue"));
    spool.submit(5, "job\n");

    std::uint64_t digest = 0;
    std::string text;
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_TRUE(spool.requeue(5));
    EXPECT_EQ(spool.state(5), JobState::Pending);

    // The payload survives the round trip.
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_EQ(text, "job\n");
}

TEST(JobSpool, FailReasonTravelsWithQuarantine)
{
    JobSpool spool(testDir("reason"));
    spool.submit(7, "poison\n");

    std::uint64_t digest = 0;
    std::string text;
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_TRUE(spool.markFailed(7, "exhausted 3 attempts"));
    EXPECT_EQ(spool.state(7), JobState::Failed);
    EXPECT_EQ(spool.failReason(7), "exhausted 3 attempts");

    // rejectPending quarantines without ever running.
    spool.submit(8, "undecodable\n");
    EXPECT_TRUE(spool.rejectPending(8, "bad record"));
    EXPECT_EQ(spool.state(8), JobState::Failed);
    EXPECT_EQ(spool.failReason(8), "bad record");

    // No reason file for jobs that never failed.
    EXPECT_EQ(spool.failReason(12345), "");
}

TEST(JobSpool, RecoverOrphansRequeuesEverythingRunning)
{
    std::string dir = testDir("orphans");
    {
        JobSpool spool(dir);
        spool.submit(1, "a\n");
        spool.submit(2, "b\n");
        spool.submit(3, "c\n");
        std::uint64_t digest = 0;
        std::string text;
        ASSERT_TRUE(spool.claim(digest, text));
        ASSERT_TRUE(spool.claim(digest, text));
        // Crash here: two jobs stranded in running/, one pending.
    }
    JobSpool spool(dir);
    EXPECT_EQ(spool.recoverOrphans(), 2u);
    EXPECT_EQ(spool.state(1), JobState::Pending);
    EXPECT_EQ(spool.state(2), JobState::Pending);
    EXPECT_EQ(spool.state(3), JobState::Pending);
    EXPECT_TRUE(spool.list(JobState::Running).empty());
    EXPECT_EQ(spool.list(JobState::Pending).size(), 3u);
}

TEST(JobSpool, ListReportsDigestsPerState)
{
    JobSpool spool(testDir("list"));
    spool.submit(0xdeadbeef, "a\n");
    spool.submit(0xcafe, "b\n");
    std::string text;
    ASSERT_TRUE(spool.claimJob(0xcafe, text));

    auto pending = spool.list(JobState::Pending);
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0], 0xdeadbeefu);
    auto running = spool.list(JobState::Running);
    ASSERT_EQ(running.size(), 1u);
    EXPECT_EQ(running[0], 0xcafeu);
    EXPECT_TRUE(spool.list(JobState::Done).empty());
}

TEST(JobSpool, PidFenceAdmitsOneLiveOwner)
{
    std::string dir = testDir("fence");
    JobSpool a(dir);
    EXPECT_EQ(a.ownerPid(), 0u);
    ASSERT_TRUE(a.acquire());
    EXPECT_EQ(a.ownerPid(), static_cast<std::uint64_t>(::getpid()));

    // Re-acquiring from the same process is idempotent (same owner).
    EXPECT_TRUE(a.acquire());

    a.release();
    EXPECT_EQ(a.ownerPid(), 0u);
}

TEST(JobSpool, FencedOutByAnotherLiveProcess)
{
    std::string dir = testDir("fence_live");
    JobSpool spool(dir);
    {
        // Forge a pid file naming a live process that is not us.  Pid
        // 1 always exists; kill-0 reports EPERM, which counts as
        // alive.
        std::ofstream f(dir + "/daemon.pid");
        f << 1 << "\n";
    }
    EXPECT_EQ(spool.ownerPid(), 1u);
    EXPECT_FALSE(spool.acquire());
    // release() refuses to remove someone else's fence.
    spool.release();
    EXPECT_EQ(spool.ownerPid(), 1u);
    std::remove((dir + "/daemon.pid").c_str());
}

TEST(JobSpool, DeadOwnersFileIsReplaced)
{
    std::string dir = testDir("deadowner");
    JobSpool spool(dir);
    {
        // Forge a pid file naming a pid that cannot be running (far
        // beyond kernel.pid_max).
        std::ofstream f(dir + "/daemon.pid");
        f << 4194304999ull << "\n";
    }
    EXPECT_EQ(spool.ownerPid(), 0u); // dead owner reads as none
    EXPECT_TRUE(spool.acquire());    // and is silently replaced
    EXPECT_EQ(spool.ownerPid(), static_cast<std::uint64_t>(::getpid()));
    spool.release();
}

TEST(JobSpool, JobNameIsFixedWidthHex)
{
    EXPECT_EQ(JobSpool::jobName(0), "job-0000000000000000");
    EXPECT_EQ(JobSpool::jobName(0xabcdef0123456789ull),
              "job-abcdef0123456789");
}

TEST(JobSpool, UnreadableClaimCandidateIsQuarantined)
{
    std::string dir = testDir("unreadable");
    JobSpool spool(dir);
    spool.submit(42, "ok\n");
    // A pending entry that is a directory cannot be slurped; the
    // claim loop must quarantine it and still serve the good job.
    fs::create_directory(dir + "/pending/" + JobSpool::jobName(43));

    std::uint64_t digest = 0;
    std::string text;
    ASSERT_TRUE(spool.claim(digest, text));
    EXPECT_EQ(digest, 42u);
    EXPECT_FALSE(spool.claim(digest, text));
}

TEST(ProcessAlive, ProbesSelfAndNonsense)
{
    EXPECT_TRUE(processAlive(static_cast<std::uint64_t>(::getpid())));
    EXPECT_FALSE(processAlive(4194304999ull));
    EXPECT_FALSE(processAlive(0));
}

} // namespace
} // namespace vpc
