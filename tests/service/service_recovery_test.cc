/**
 * @file
 * Cross-process robustness: SIGKILL the daemon with jobs in every
 * lifecycle state and prove a successor finishes everything with
 * results bitwise identical to daemon-less execution; hammer one
 * spool + run cache with many concurrent client processes and prove
 * exactly-once compute per unique key with no corrupted or leftover
 * files.  The fork-based tests are skipped under ThreadSanitizer
 * (fork + instrumented threads is unsupported there); the in-process
 * thread variant at the bottom carries the concurrency coverage in
 * TSan builds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/client.hh"
#include "service/daemon.hh"
#include "service/spool.hh"
#include "sim/format.hh"
#include "system/experiment.hh"
#include "system/options.hh"

#if defined(__SANITIZE_THREAD__)
#define VPC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VPC_TSAN 1
#endif
#endif
#ifndef VPC_TSAN
#define VPC_TSAN 0
#endif

namespace vpc
{
namespace
{

namespace fs = std::filesystem;

std::string
testDir(const std::string &name)
{
    std::string dir =
        format("{}/vpc_recovery_{}", ::testing::TempDir(), name);
    fs::remove_all(dir);
    return dir;
}

/** A cheap two-thread job; @p seed varies the content identity. */
RunJob
smallJob(std::uint64_t seed, Cycle measure = 2'000)
{
    RunJob job;
    job.config = makeBaselineConfig(2, ArbiterPolicy::Fcfs);
    job.workloads = {WorkloadKey{"loads", threadBaseAddr(0), seed},
                     WorkloadKey{"stores", threadBaseAddr(1), seed + 1}};
    job.warmup = 500;
    job.measure = measure;
    return job;
}

void
expectSameRecord(const RunRecord &a, const RunRecord &b)
{
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.ipc, b.stats.ipc); // exact: bit-identical runs
    EXPECT_EQ(a.stats.instrs, b.stats.instrs);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_EQ(a.kernel.cyclesExecuted.value(),
              b.kernel.cyclesExecuted.value());
    EXPECT_EQ(a.kernel.eventsFired.value(), b.kernel.eventsFired.value());
}

/** @return every *.tmp.* file anywhere under @p root. */
std::vector<std::string>
leftoverTemps(const std::string &root)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
        std::string name = it->path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            out.push_back(it->path().string());
    }
    return out;
}

TEST(ServiceRecovery, SigkilledDaemonIsRecoveredBySuccessor)
{
#if VPC_TSAN
    GTEST_SKIP() << "fork-based test: not supported under TSan";
#endif
    std::string dir = testDir("sigkill");
    ServiceClient client(dir);
    // Enough moderately sized jobs that done/, running/ and pending/
    // are all populated at once partway through the first daemon's
    // life.
    constexpr std::uint64_t kJobs = 12;
    std::vector<std::uint64_t> digests;
    for (std::uint64_t s = 0; s < kJobs; ++s)
        digests.push_back(client.submit(smallJob(s * 10 + 1, 20'000)));

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Daemon child: serve until killed.  _exit on any failure so
        // gtest machinery never runs twice.
        DaemonConfig cfg;
        cfg.spoolDir = dir;
        cfg.workers = 1;
        cfg.pollMs = 1;
        // Claim one job per pass: the default batched claim can move
        // every pending job into running/ and settle the whole batch
        // at once, leaving only a sub-millisecond window in which
        // done/, running/ and pending/ are simultaneously non-empty.
        // One-at-a-time claims keep that tri-state window open for
        // nearly the whole drain, so the snapshot poll below is
        // deterministic in practice.
        cfg.claimCap = 1;
        SweepDaemon daemon(cfg);
        if (!daemon.start())
            ::_exit(2);
        std::atomic<bool> never{false};
        daemon.run(never);
        ::_exit(0); // unreachable: run() only returns on stop
    }

    // Wait for the mid-flight snapshot: at least one job in each
    // lifecycle state, then SIGKILL with no warning.
    JobSpool &spool = client.spool();
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::seconds(60);
    bool snapshot = false;
    while (std::chrono::steady_clock::now() < until) {
        if (!spool.list(JobState::Done).empty() &&
            !spool.list(JobState::Running).empty() &&
            !spool.list(JobState::Pending).empty()) {
            snapshot = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(snapshot)
        << "daemon finished before a full-state snapshot was seen";
    EXPECT_TRUE(WIFSIGNALED(status));

    // The dead daemon's pid file must not fence out the successor.
    EXPECT_EQ(spool.ownerPid(), 0u);

    std::size_t orphans = spool.list(JobState::Running).size();
    EXPECT_GE(orphans, 1u);

    // Successor daemon, same spool, same cache: recover and finish.
    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 2;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    EXPECT_EQ(daemon.stats().orphansRecovered, orphans);
    auto drain_until = std::chrono::steady_clock::now() +
                       std::chrono::seconds(120);
    while ((!spool.list(JobState::Pending).empty() ||
            !spool.list(JobState::Running).empty()) &&
           std::chrono::steady_clock::now() < drain_until)
        daemon.runOnce();

    // Every job completed; none failed, none lost, none duplicated
    // (content-addressed spool files make a duplicate impossible to
    // even represent).
    EXPECT_EQ(spool.list(JobState::Done).size(), kJobs);
    EXPECT_TRUE(spool.list(JobState::Failed).empty());

    // Jobs the victim already finished stay finished — the successor
    // only works the pending/running remainder, so it claimed fewer
    // jobs than were submitted (at least one was in done/ at kill
    // time) but at least the orphans it recovered.
    EXPECT_LT(daemon.stats().claimed, kJobs);
    EXPECT_GE(daemon.stats().claimed, orphans);

    // And the results are bitwise identical to daemon-less runs.
    for (std::uint64_t s = 0; s < kJobs; ++s) {
        RunResult served;
        ASSERT_TRUE(client.fetch(digests[s], served));
        RunCache local("");
        RunResult direct =
            runAndMeasureCached(smallJob(s * 10 + 1, 20'000), &local);
        expectSameRecord(served.record, direct.record);
    }

    EXPECT_TRUE(leftoverTemps(dir).empty());
}

TEST(ServiceStress, ManyClientProcessesOneCacheExactlyOnce)
{
#if VPC_TSAN
    GTEST_SKIP() << "fork-based test: not supported under TSan";
#endif
    std::string dir = testDir("stress");
    constexpr int kClients = 8;
    constexpr std::uint64_t kUnique = 4;

    // Fork the clients before the daemon so no threads exist yet in
    // this process at fork time.  Children submit and poll the spool
    // directly (not runJob) so none of them ever computes locally —
    // the daemon is the only computer, making compute counts exact.
    std::vector<pid_t> kids;
    for (int c = 0; c < kClients; ++c) {
        pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid != 0) {
            kids.push_back(pid);
            continue;
        }
        ServiceClient client(dir);
        bool ok = true;
        for (std::uint64_t i = 0; i < kUnique; ++i) {
            // Each client walks the job set from a different offset
            // so submissions interleave across processes.
            std::uint64_t s =
                (i + static_cast<std::uint64_t>(c)) % kUnique;
            std::uint64_t digest = client.submit(smallJob(s * 7 + 1));
            auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(60);
            JobState st;
            do {
                st = client.spool().state(digest);
                if (st == JobState::Done || st == JobState::Failed)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            } while (std::chrono::steady_clock::now() < deadline);
            RunResult r;
            if (st != JobState::Done || !client.fetch(digest, r) ||
                r.record.endCycle == 0)
                ok = false;
        }
        ::_exit(ok ? 0 : 1);
    }

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 2;
    cfg.pollMs = 1;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    std::atomic<bool> stop{false};
    std::thread runner([&] { daemon.run(stop); });

    for (pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "client " << pid << " failed";
    }
    stop.store(true);
    runner.join();

    // 8 clients x 4 submissions collapsed to one *compute* per unique
    // key.  (A client can legally re-publish a job in the instant the
    // daemon claims the first copy — the re-claim is served from
    // cache, so completed - cacheHits is the exact compute count.)
    EXPECT_EQ(daemon.stats().completed - daemon.stats().cacheHits,
              kUnique);
    EXPECT_GE(daemon.stats().claimed, kUnique);
    EXPECT_EQ(daemon.stats().failures, 0u);

    // All terminal, nothing stranded, nothing half-written.
    JobSpool spool(dir);
    EXPECT_EQ(spool.list(JobState::Done).size(), kUnique);
    EXPECT_TRUE(spool.list(JobState::Pending).empty());
    EXPECT_TRUE(spool.list(JobState::Running).empty());
    EXPECT_TRUE(spool.list(JobState::Failed).empty());
    EXPECT_TRUE(leftoverTemps(dir).empty());

    // Spot-check fidelity against daemon-less execution.
    ServiceClient checker(dir);
    for (std::uint64_t s = 0; s < kUnique; ++s) {
        RunResult served;
        ASSERT_TRUE(checker.fetch(runDigest(smallJob(s * 7 + 1)),
                                  served));
        RunCache local("");
        RunResult direct = runAndMeasureCached(smallJob(s * 7 + 1),
                                               &local);
        expectSameRecord(served.record, direct.record);
    }
}

TEST(ServiceStress, ManyClientThreadsOneCacheExactlyOnce)
{
    // The TSan-safe variant: same exactly-once contract, concurrency
    // from threads instead of processes.  Each thread owns a private
    // ServiceClient (spool handles and cache handles are not shared),
    // rendezvousing only through the filesystem — exactly like the
    // process version.
    std::string dir = testDir("thread_stress");
    constexpr int kClients = 8;
    constexpr std::uint64_t kUnique = 4;

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 2;
    cfg.pollMs = 1;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    std::atomic<bool> stop{false};
    std::thread runner([&] { daemon.run(stop); });

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client(dir);
            for (std::uint64_t i = 0; i < kUnique; ++i) {
                std::uint64_t s =
                    (i + static_cast<std::uint64_t>(c)) % kUnique;
                std::uint64_t digest =
                    client.submit(smallJob(s * 7 + 1));
                auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::seconds(60);
                JobState st;
                do {
                    st = client.spool().state(digest);
                    if (st == JobState::Done || st == JobState::Failed)
                        break;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                } while (std::chrono::steady_clock::now() < deadline);
                RunResult r;
                if (st != JobState::Done ||
                    !client.fetch(digest, r) || r.record.endCycle == 0)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    stop.store(true);
    runner.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(daemon.stats().completed - daemon.stats().cacheHits,
              kUnique);
    EXPECT_GE(daemon.stats().claimed, kUnique);
    EXPECT_EQ(daemon.stats().failures, 0u);

    JobSpool spool(dir);
    EXPECT_EQ(spool.list(JobState::Done).size(), kUnique);
    EXPECT_TRUE(spool.list(JobState::Pending).empty());
    EXPECT_TRUE(spool.list(JobState::Running).empty());
    EXPECT_TRUE(leftoverTemps(dir).empty());
}

} // namespace
} // namespace vpc
