/**
 * @file
 * Service saturation smoke: flood the spool with a thousand tiny jobs
 * and hold the daemon to its exactly-once contract under backlog
 * pressure — every submitted digest reaches done/ exactly once,
 * duplicate submissions collapse instead of re-executing, nothing is
 * lost, quarantined or left claimed, and spot-checked results replay
 * bit-identical to daemon-less execution.
 *
 * The jobs are deliberately minimal (one processor, a few hundred
 * cycles) so the test exercises the claim/execute/settle machinery and
 * the spool's file churn, not the simulator.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/daemon.hh"
#include "service/spool.hh"
#include "sim/format.hh"
#include "system/experiment.hh"
#include "system/options.hh"

#include <filesystem>

namespace vpc
{
namespace
{

/** A near-trivial one-processor job; @p seed varies the identity. */
RunJob
tinyJob(std::uint64_t seed)
{
    RunJob job;
    job.config = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    job.workloads = {WorkloadKey{seed % 2 == 0 ? "loads" : "stores",
                                 threadBaseAddr(0), seed}};
    job.warmup = 100;
    job.measure = 400;
    return job;
}

TEST(ServiceSaturation, ThousandTinyJobsCompleteExactlyOnce)
{
    const std::size_t kJobs = 1'000;
    std::string dir = format("{}/vpc_daemon_saturation",
                             ::testing::TempDir());
    std::filesystem::remove_all(dir);

    ServiceClient client(dir);
    std::vector<std::uint64_t> digests;
    digests.reserve(kJobs);
    for (std::uint64_t s = 1; s <= kJobs; ++s)
        digests.push_back(client.submit(tinyJob(s)));

    // Resubmitting a slice of the backlog must be digest-stable and
    // must not create extra work.
    for (std::uint64_t s = 1; s <= 100; ++s)
        EXPECT_EQ(client.submit(tinyJob(s)), digests[s - 1]);

    DaemonConfig cfg;
    cfg.spoolDir = dir;
    cfg.workers = 2;
    SweepDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());

    auto until = std::chrono::steady_clock::now() +
                 std::chrono::minutes(4);
    while (std::chrono::steady_clock::now() < until) {
        daemon.runOnce();
        if (daemon.spool().list(JobState::Pending).empty() &&
            daemon.spool().list(JobState::Running).empty())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Exactly once: every digest terminal in done/, no failures, no
    // retries, no leftovers in pending/ or running/.
    EXPECT_TRUE(daemon.spool().list(JobState::Pending).empty());
    EXPECT_TRUE(daemon.spool().list(JobState::Running).empty());
    EXPECT_TRUE(daemon.spool().list(JobState::Failed).empty());
    EXPECT_EQ(daemon.spool().list(JobState::Done).size(), kJobs);
    EXPECT_EQ(daemon.stats().claimed, kJobs);
    EXPECT_EQ(daemon.stats().completed, kJobs);
    EXPECT_EQ(daemon.stats().failures, 0u);
    EXPECT_EQ(daemon.stats().retried, 0u);
    EXPECT_EQ(daemon.stats().quarantined, 0u);
    for (std::uint64_t d : digests)
        EXPECT_EQ(client.spool().state(d), JobState::Done);

    // Spot-check served records against daemon-less execution.
    for (std::uint64_t s : {std::uint64_t(1), std::uint64_t(500),
                            std::uint64_t(kJobs)}) {
        RunResult served;
        ASSERT_TRUE(client.fetch(digests[s - 1], served));
        RunCache local("");
        RunResult direct = runAndMeasureCached(tinyJob(s), &local);
        EXPECT_EQ(served.record.endCycle, direct.record.endCycle);
        EXPECT_EQ(served.record.stats.ipc, direct.record.stats.ipc);
        EXPECT_EQ(served.record.stats.instrs,
                  direct.record.stats.instrs);
        EXPECT_EQ(served.record.kernel.eventsFired.value(),
                  direct.record.kernel.eventsFired.value());
    }
}

} // namespace
} // namespace vpc
