/**
 * @file
 * Unit tests for the arbitrated SharedResource occupancy model.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arbiter/fcfs_arbiter.hh"
#include "arbiter/shared_resource.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(std::uint32_t id, ThreadId t, bool write = false)
{
    ArbRequest r;
    r.id = id;
    r.thread = t;
    r.isWrite = write;
    r.seq = id;
    return r;
}

struct Grant
{
    std::uint32_t id;
    Cycle start;
    Cycle done;
};

class SharedResourceTest : public ::testing::Test
{
  protected:
    SharedResourceTest()
        : res("test.data", std::make_unique<FcfsArbiter>(2), 8, 2)
    {
        res.setGrantHandler(
            [this](const ArbRequest &req, Cycle start, Cycle done) {
                grants.push_back(Grant{req.id, start, done});
            });
    }

    SharedResource res;
    std::vector<Grant> grants;
};

TEST_F(SharedResourceTest, ReadOccupiesForLatency)
{
    res.request(makeReq(1, 0), 0);
    res.tick(0);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].start, 0u);
    EXPECT_EQ(grants[0].done, 8u);
    EXPECT_TRUE(res.busy(7));
    EXPECT_FALSE(res.busy(8));
}

TEST_F(SharedResourceTest, WriteOccupiesTwoAccesses)
{
    res.request(makeReq(1, 0, true), 0);
    res.tick(0);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].done, 16u);
}

TEST_F(SharedResourceTest, BackToBackServiceNoIdleGap)
{
    res.request(makeReq(1, 0), 0);
    res.request(makeReq(2, 1), 0);
    for (Cycle c = 0; c <= 16; ++c)
        res.tick(c);
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[1].start, 8u);
    EXPECT_EQ(grants[1].done, 16u);
}

TEST_F(SharedResourceTest, NonPreemptible)
{
    res.request(makeReq(1, 0), 0);
    res.tick(0);
    // A new request arriving mid-service waits for completion even
    // though it arrived long before the resource frees.
    res.request(makeReq(2, 1), 1);
    for (Cycle c = 1; c < 8; ++c) {
        res.tick(c);
        EXPECT_EQ(grants.size(), 1u);
    }
    res.tick(8);
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[1].start, 8u);
}

TEST_F(SharedResourceTest, UtilizationTracksBusyCycles)
{
    res.request(makeReq(1, 0), 0);
    res.request(makeReq(2, 0, true), 0);
    for (Cycle c = 0; c <= 24; ++c)
        res.tick(c);
    // 8 (read) + 16 (write) busy cycles.
    EXPECT_EQ(res.util().busyCycles(), 24u);
    EXPECT_DOUBLE_EQ(res.util().utilization(48), 0.5);
    EXPECT_EQ(res.accessCount(), 2u);
}

TEST_F(SharedResourceTest, OccupancyQuery)
{
    EXPECT_EQ(res.occupancy(makeReq(1, 0, false)), 8u);
    EXPECT_EQ(res.occupancy(makeReq(1, 0, true)), 16u);
}

} // namespace
} // namespace vpc
