/**
 * @file
 * Unit tests for the VPC fair-queuing arbiter (Section 4.1).
 */

#include <gtest/gtest.h>

#include "arbiter/vpc_arbiter.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(ThreadId t, SeqNum seq, bool write = false, Addr line = 0)
{
    ArbRequest r;
    r.id = static_cast<std::uint32_t>(seq);
    r.thread = t;
    r.isWrite = write;
    r.seq = seq;
    r.lineAddr = line;
    return r;
}

TEST(VpcArbiter, EmptySelectsNothing)
{
    VpcArbiter arb(2, 8, 2, {0.5, 0.5});
    EXPECT_FALSE(arb.hasPending());
    EXPECT_EQ(arb.select(0), std::nullopt);
}

TEST(VpcArbiter, SingleThreadFifoWithoutReorder)
{
    VpcArbiterOptions opts;
    opts.intraThreadRow = false;
    VpcArbiter arb(1, 8, 2, {1.0}, opts);
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(0, 2), 0);
    auto a = arb.select(0);
    auto b = arb.select(8);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->seq, 1u);
    EXPECT_EQ(b->seq, 2u);
}

TEST(VpcArbiter, VirtualTimeAdvancesByScaledService)
{
    VpcArbiter arb(2, 8, 2, {0.25, 0.75});
    arb.enqueue(makeReq(0, 1), 0);
    arb.select(0);
    // L / phi = 8 / 0.25 = 32.
    EXPECT_DOUBLE_EQ(arb.virtualTime(0), 32.0);
}

TEST(VpcArbiter, WriteUsesDoubleVirtualService)
{
    VpcArbiter arb(1, 8, 2, {0.5});
    arb.enqueue(makeReq(0, 1, true), 0);
    arb.select(0);
    // Write: 2 * L / phi = 2 * 8 / 0.5 = 32.
    EXPECT_DOUBLE_EQ(arb.virtualTime(0), 32.0);
}

TEST(VpcArbiter, EarliestVirtualFinishFirst)
{
    // Thread 1 has 3x the share, so after each grant its virtual time
    // advances 3x slower; it should win most grants.
    VpcArbiter arb(2, 8, 1, {0.25, 0.75});
    for (SeqNum i = 0; i < 8; ++i) {
        arb.enqueue(makeReq(0, 100 + i), 0);
        arb.enqueue(makeReq(1, 200 + i), 0);
    }
    unsigned grants1 = 0;
    Cycle now = 0;
    for (unsigned i = 0; i < 8; ++i) {
        auto r = arb.select(now);
        ASSERT_TRUE(r);
        if (r->thread == 1)
            ++grants1;
        now += 8;
    }
    EXPECT_EQ(grants1, 6u); // 0.75 of 8 grants
}

TEST(VpcArbiter, BandwidthSharesRespectedOverLongRun)
{
    VpcArbiter arb(2, 8, 1, {0.1, 0.9});
    unsigned grants[2] = {0, 0};
    Cycle now = 0;
    SeqNum seq = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        // Keep both threads backlogged.
        while (arb.pendingCount(0) < 2)
            arb.enqueue(makeReq(0, seq++), now);
        while (arb.pendingCount(1) < 2)
            arb.enqueue(makeReq(1, seq++), now);
        auto r = arb.select(now);
        ASSERT_TRUE(r);
        ++grants[r->thread];
        now += 8;
    }
    EXPECT_NEAR(grants[0] / 1000.0, 0.1, 0.01);
    EXPECT_NEAR(grants[1] / 1000.0, 0.9, 0.01);
}

TEST(VpcArbiter, WorkConservingGivesIdleBandwidthAway)
{
    // Thread 1 never sends requests; thread 0 (10% share) should get
    // every grant anyway.
    VpcArbiter arb(2, 8, 1, {0.1, 0.9});
    Cycle now = 0;
    for (SeqNum i = 0; i < 50; ++i)
        arb.enqueue(makeReq(0, i), now);
    unsigned grants = 0;
    for (unsigned i = 0; i < 50; ++i) {
        auto r = arb.select(now);
        ASSERT_TRUE(r);
        EXPECT_EQ(r->thread, 0u);
        ++grants;
        now += 8;
    }
    EXPECT_EQ(grants, 50u);
}

TEST(VpcArbiter, NonWorkConservingWaitsForVirtualStartTime)
{
    VpcArbiterOptions opts;
    opts.workConserving = false;
    VpcArbiter arb(1, 8, 1, {0.5}, opts);
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(0, 2), 0);
    EXPECT_TRUE(arb.select(0).has_value());
    // Virtual time is now 16; at cycle 8 the thread is not yet
    // eligible, so the resource idles even though work is pending.
    EXPECT_FALSE(arb.select(8).has_value());
    EXPECT_TRUE(arb.select(16).has_value());
}

TEST(VpcArbiter, IdleResetPreventsBankedCredit)
{
    VpcArbiter arb(2, 8, 1, {0.5, 0.5});
    // Thread 1 runs alone for a long time, racking up virtual time.
    SeqNum seq = 0;
    Cycle now = 0;
    for (unsigned i = 0; i < 100; ++i) {
        arb.enqueue(makeReq(1, seq++), now);
        ASSERT_TRUE(arb.select(now).has_value());
        now += 8;
    }
    EXPECT_GT(arb.virtualTime(1), static_cast<double>(now));

    // Thread 0 wakes after its long idle period.  Equation 6 resets
    // its virtual time to *now*, so its credit is bounded by how far
    // thread 1 ran ahead of real time (the excess service thread 1
    // actually consumed), not by the unbounded idle duration.  Thread
    // 0 therefore gets priority only until virtual times equalize:
    // thread 1 ran ~1600 virtual cycles in 800 real cycles, so thread
    // 0 receives the first ~50 grants (800 cycles / 16 virtual each)
    // plus half of the remaining 50: ~75 of 100.
    unsigned grants[2] = {0, 0};
    auto pump = [&](unsigned rounds, unsigned *out) {
        for (unsigned i = 0; i < rounds; ++i) {
            while (arb.pendingCount(0) < 2)
                arb.enqueue(makeReq(0, seq++), now);
            while (arb.pendingCount(1) < 2)
                arb.enqueue(makeReq(1, seq++), now);
            auto r = arb.select(now);
            ASSERT_TRUE(r);
            ++out[r->thread];
            now += 8;
        }
    };
    pump(100, grants);
    EXPECT_NEAR(grants[0], 75u, 5u);
    EXPECT_GT(grants[1], 0u); // the partner is not fully starved

    // Once virtual times have converged the 50/50 shares hold.
    unsigned steady[2] = {0, 0};
    pump(100, steady);
    EXPECT_NEAR(steady[0], 50u, 5u);
}

TEST(VpcArbiter, WithoutIdleResetCreditIsBanked)
{
    VpcArbiterOptions opts;
    opts.idleReset = false;
    VpcArbiter arb(2, 8, 1, {0.5, 0.5}, opts);
    SeqNum seq = 0;
    Cycle now = 0;
    for (unsigned i = 0; i < 100; ++i) {
        arb.enqueue(makeReq(1, seq++), now);
        ASSERT_TRUE(arb.select(now).has_value());
        now += 8;
    }
    // Thread 0's virtual time is still ~0; with the ablated Eq. 6 it
    // monopolizes the resource until it catches up.
    unsigned first_grants0 = 0;
    for (unsigned i = 0; i < 50; ++i) {
        while (arb.pendingCount(0) < 2)
            arb.enqueue(makeReq(0, seq++), now);
        while (arb.pendingCount(1) < 2)
            arb.enqueue(makeReq(1, seq++), now);
        auto r = arb.select(now);
        ASSERT_TRUE(r);
        if (r->thread == 0)
            ++first_grants0;
        now += 8;
    }
    EXPECT_EQ(first_grants0, 50u);
}

TEST(VpcArbiter, ZeroShareThreadOnlyGetsExcess)
{
    VpcArbiter arb(2, 8, 1, {1.0, 0.0});
    SeqNum seq = 0;
    // Both backlogged: thread 0 wins every time.
    for (unsigned i = 0; i < 10; ++i) {
        arb.enqueue(makeReq(0, seq++), 0);
        arb.enqueue(makeReq(1, 1000 + seq++), 0);
    }
    Cycle now = 0;
    for (unsigned i = 0; i < 10; ++i) {
        auto r = arb.select(now);
        ASSERT_TRUE(r);
        EXPECT_EQ(r->thread, 0u);
        now += 8;
    }
    // Thread 0 drained: thread 1 now receives the excess.
    auto r = arb.select(now);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->thread, 1u);
}

TEST(VpcArbiter, IntraThreadRowReordersReads)
{
    VpcArbiter arb(1, 8, 2, {1.0});
    arb.enqueue(makeReq(0, 1, true, 0x100), 0);
    arb.enqueue(makeReq(0, 2, false, 0x200), 0);
    auto r = arb.select(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->seq, 2u); // the read bypasses the older write
}

TEST(VpcArbiter, RowReorderRespectsSameLineDependence)
{
    VpcArbiter arb(1, 8, 2, {1.0});
    arb.enqueue(makeReq(0, 1, true, 0x100), 0);
    arb.enqueue(makeReq(0, 2, false, 0x100), 0); // same line: blocked
    auto r = arb.select(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->seq, 1u);
}

TEST(VpcArbiter, ReorderingDoesNotChangeInterThreadBandwidth)
{
    // Mix of reads and writes per thread; with and without RoW
    // reordering the *grant share* per thread must be identical,
    // because R.S_i depends only on service amounts.
    auto run = [](bool row) {
        VpcArbiterOptions opts;
        opts.intraThreadRow = row;
        VpcArbiter arb(2, 8, 2, {0.3, 0.7}, opts);
        double service[2] = {0.0, 0.0};
        SeqNum seq = 0;
        Cycle now = 0;
        for (unsigned i = 0; i < 2000; ++i) {
            while (arb.pendingCount(0) < 4) {
                arb.enqueue(makeReq(0, seq, seq % 3 == 0,
                                    0x40 * (seq % 7)), now);
                ++seq;
            }
            while (arb.pendingCount(1) < 4) {
                arb.enqueue(makeReq(1, seq, seq % 2 == 0,
                                    0x40 * (seq % 5)), now);
                ++seq;
            }
            auto r = arb.select(now);
            if (!r)
                break;
            Cycle occ = r->isWrite ? 16 : 8;
            service[r->thread] += static_cast<double>(occ);
            now += occ;
        }
        return service[0] / (service[0] + service[1]);
    };
    double with_row = run(true);
    double without_row = run(false);
    EXPECT_NEAR(with_row, 0.3, 0.02);
    EXPECT_NEAR(without_row, 0.3, 0.02);
}


TEST(VpcArbiter, VirtualClockSharesExactUnderInfeasibleCapacity)
{
    // Simulate a resource that delivers only half its nominal rate
    // (grants spaced 2x the service latency apart).  Wall-clock FQ
    // lets both threads lag and distorts shares toward whoever lags
    // more; virtual-clock FQ keeps the 1:3 grant ratio exact.
    auto run = [](bool virtual_clock) {
        VpcArbiterOptions opts;
        opts.virtualClock = virtual_clock;
        VpcArbiter arb(2, 8, 1, {0.25, 0.75}, opts);
        unsigned grants[2] = {0, 0};
        SeqNum seq = 0;
        Cycle now = 0;
        for (unsigned i = 0; i < 4000; ++i) {
            while (arb.pendingCount(0) < 2)
                arb.enqueue(makeReq(0, seq++), now);
            while (arb.pendingCount(1) < 2)
                arb.enqueue(makeReq(1, seq++), now);
            auto r = arb.select(now);
            EXPECT_TRUE(r.has_value());
            ++grants[r->thread];
            now += 16; // resource twice as slow as nominal
        }
        return grants[1] / 4000.0;
    };
    EXPECT_NEAR(run(true), 0.75, 0.01);
    // The wall-clock variant also holds here while both stay
    // backlogged (deficits grow in proportion); the distinction
    // appears with bursty arrivals, tested below.
    EXPECT_NEAR(run(false), 0.75, 0.01);
}

TEST(VpcArbiter, VirtualClockProtectsBurstsFromBankedDeficit)
{
    // An overloaded resource: the backlogged hog accumulates
    // wall-clock deficit.  A brief visitor must still be served
    // within a few quanta under the virtual clock.
    VpcArbiterOptions opts;
    opts.virtualClock = true;
    VpcArbiter arb(2, 8, 1, {0.5, 0.5}, opts);
    SeqNum seq = 0;
    Cycle now = 0;
    // Hog runs alone on a half-speed resource for a long time.
    for (unsigned i = 0; i < 2000; ++i) {
        while (arb.pendingCount(1) < 4)
            arb.enqueue(makeReq(1, seq++), now);
        ASSERT_TRUE(arb.select(now).has_value());
        now += 32;
    }
    // The visitor arrives: it must win within a couple of grants.
    arb.enqueue(makeReq(0, 999999), now);
    unsigned waited = 0;
    for (;; ++waited) {
        while (arb.pendingCount(1) < 4)
            arb.enqueue(makeReq(1, seq++), now);
        auto r = arb.select(now);
        ASSERT_TRUE(r.has_value());
        now += 32;
        if (r->thread == 0)
            break;
        ASSERT_LT(waited, 4u) << "visitor starved by banked deficit";
    }
}

TEST(VpcArbiter, OverAllocationIsFatal)
{
    EXPECT_EXIT((VpcArbiter{2, 8, 1, {0.6, 0.6}}),
                testing::ExitedWithCode(1), "over-allocated");
}

TEST(VpcArbiter, ShareUpdateTakesEffect)
{
    VpcArbiter arb(2, 8, 1, {0.5, 0.5});
    arb.setShare(0, 0.1);
    arb.setShare(1, 0.9);
    EXPECT_DOUBLE_EQ(arb.share(0), 0.1);
    unsigned grants[2] = {0, 0};
    SeqNum seq = 0;
    Cycle now = 0;
    for (unsigned i = 0; i < 500; ++i) {
        while (arb.pendingCount(0) < 2)
            arb.enqueue(makeReq(0, seq++), now);
        while (arb.pendingCount(1) < 2)
            arb.enqueue(makeReq(1, seq++), now);
        auto r = arb.select(now);
        ASSERT_TRUE(r);
        ++grants[r->thread];
        now += 8;
    }
    EXPECT_NEAR(grants[1] / 500.0, 0.9, 0.02);
}

} // namespace
} // namespace vpc
