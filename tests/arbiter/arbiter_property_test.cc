/**
 * @file
 * Parameterized property tests over the arbiter implementations.
 *
 * These sweep share allocations, request mixes and policies and check
 * the invariants the paper's QoS argument rests on:
 *
 *  - every enqueued request is granted exactly once (no loss, no
 *    duplication), under every policy;
 *  - a VPC thread's *service-time* fraction converges to its share
 *    phi whenever it stays backlogged, independent of the competing
 *    mix;
 *  - a thread operating within its allocated rate observes a bounded
 *    grant delay (the fair-queuing deadline + one maximum service
 *    time, Section 4.1.2);
 *  - shares are conserved: the sum of service fractions is 1 when the
 *    resource is saturated.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "arbiter/arbiter_factory.hh"
#include "sim/random.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(ThreadId t, SeqNum seq, bool write, Addr line)
{
    ArbRequest r;
    r.id = static_cast<std::uint32_t>(seq & 0xffffffff);
    r.thread = t;
    r.seq = seq;
    r.isWrite = write;
    r.lineAddr = line;
    return r;
}

// ---------------------------------------------------------------------
// Exactly-once delivery under every policy.
// ---------------------------------------------------------------------

class PolicySweep : public ::testing::TestWithParam<ArbiterPolicy>
{};

TEST_P(PolicySweep, EveryRequestGrantedExactlyOnce)
{
    const unsigned threads = 4;
    std::vector<double> shares(threads, 1.0 / threads);
    auto arb = makeArbiter(GetParam(), threads, 8, 2, shares);

    Rng rng(123, 7);
    std::map<SeqNum, unsigned> granted;
    SeqNum seq = 0;
    Cycle now = 0;
    unsigned enqueued = 0;
    for (unsigned round = 0; round < 3000; ++round) {
        // Random arrivals.
        while (rng.chance(0.6) && enqueued - granted.size() < 32) {
            ThreadId t = rng.below(threads);
            arb->enqueue(makeReq(t, seq, rng.chance(0.3),
                                 0x40 * rng.below(16)),
                         now);
            granted[seq] = 0;
            ++seq;
            ++enqueued;
        }
        if (auto r = arb->select(now))
            ++granted.at(r->seq);
        now += 8;
    }
    while (auto r = arb->select(now)) {
        ++granted.at(r->seq);
        now += 8;
    }
    for (const auto &[s, count] : granted)
        EXPECT_EQ(count, 1u) << "seq " << s;
    EXPECT_FALSE(arb->hasPending());
    EXPECT_EQ(arb->pendingCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(ArbiterPolicy::Fcfs, ArbiterPolicy::RowFcfs,
                      ArbiterPolicy::RoundRobin, ArbiterPolicy::Vpc),
    [](const auto &info) {
        return std::string(arbiterPolicyName(info.param)) == "RoW-FCFS"
            ? std::string("RowFcfs")
            : std::string(arbiterPolicyName(info.param));
    });

// ---------------------------------------------------------------------
// Service-share convergence across allocations and mixes.
// ---------------------------------------------------------------------

struct ShareCase
{
    double phi0;
    double writeFrac0; //!< writes in thread 0's mix
    double writeFrac1;
};

class VpcShareSweep : public ::testing::TestWithParam<ShareCase>
{};

TEST_P(VpcShareSweep, ServiceFractionMatchesShare)
{
    const ShareCase c = GetParam();
    auto arb = makeArbiter(ArbiterPolicy::Vpc, 2, 8, 2,
                           {c.phi0, 1.0 - c.phi0});
    Rng rng(99, 3);
    double service[2] = {0.0, 0.0};
    SeqNum seq = 0;
    Cycle now = 0;
    for (unsigned i = 0; i < 6000; ++i) {
        while (arb->pendingCount(0) < 4) {
            arb->enqueue(makeReq(0, seq, rng.chance(c.writeFrac0),
                                 0x40 * (seq % 9)),
                         now);
            ++seq;
        }
        while (arb->pendingCount(1) < 4) {
            arb->enqueue(makeReq(1, seq, rng.chance(c.writeFrac1),
                                 0x40 * (seq % 11)),
                         now);
            ++seq;
        }
        auto r = arb->select(now);
        ASSERT_TRUE(r);
        Cycle occ = r->isWrite ? 16 : 8;
        service[r->thread] += static_cast<double>(occ);
        now += occ;
    }
    double frac0 = service[0] / (service[0] + service[1]);
    EXPECT_NEAR(frac0, c.phi0, 0.015)
        << "phi0=" << c.phi0 << " wf0=" << c.writeFrac0
        << " wf1=" << c.writeFrac1;
}

INSTANTIATE_TEST_SUITE_P(
    SharesAndMixes, VpcShareSweep,
    ::testing::Values(ShareCase{0.1, 0.0, 0.0},
                      ShareCase{0.25, 0.0, 1.0},
                      ShareCase{0.25, 1.0, 0.0},
                      ShareCase{0.5, 0.5, 0.5},
                      ShareCase{0.75, 0.2, 0.8},
                      ShareCase{0.9, 1.0, 1.0}),
    [](const auto &info) {
        return "phi" +
               std::to_string(static_cast<int>(
                   info.param.phi0 * 100)) +
               "w" +
               std::to_string(static_cast<int>(
                   info.param.writeFrac0 * 100)) +
               "v" +
               std::to_string(static_cast<int>(
                   info.param.writeFrac1 * 100));
    });

// ---------------------------------------------------------------------
// Bounded delay for a thread operating within its allocation.
// ---------------------------------------------------------------------

class VpcDelayBound : public ::testing::TestWithParam<double>
{};

TEST_P(VpcDelayBound, WithinRateRequestsMeetDeadlinePlusPreemption)
{
    const double phi = GetParam();
    const Cycle latency = 8;
    auto arb = makeArbiter(ArbiterPolicy::Vpc, 2, latency, 2,
                           {phi, 1.0 - phi});
    Rng rng(7, 11);

    // Thread 1 floods with writes (worst-case 16-cycle services);
    // thread 0 submits one read at a time, at most one outstanding:
    // well within its rate.
    SeqNum seq = 1000;
    Cycle now = 0;
    bool t0_outstanding = false;
    Cycle t0_submit = 0;
    double worst_delay = 0.0;
    unsigned t0_grants = 0;
    while (t0_grants < 300) {
        while (arb->pendingCount(1) < 4)
            arb->enqueue(makeReq(1, seq++, true, 0x80), now);
        if (!t0_outstanding) {
            arb->enqueue(makeReq(0, seq++, false, 0x40), now);
            t0_outstanding = true;
            t0_submit = now;
        }
        auto r = arb->select(now);
        ASSERT_TRUE(r);
        if (r->thread == 0) {
            worst_delay = std::max(
                worst_delay, static_cast<double>(now - t0_submit));
            t0_outstanding = false;
            ++t0_grants;
        }
        now += r->isWrite ? 16 : 8;
    }
    // Fair-queuing bound: virtual deadline L/phi plus one maximum
    // (non-preemptible) service time.
    double bound = static_cast<double>(latency) / phi + 16.0;
    EXPECT_LE(worst_delay, bound) << "phi=" << phi;
}

INSTANTIATE_TEST_SUITE_P(Allocations, VpcDelayBound,
                         ::testing::Values(0.2, 0.25, 0.5, 0.75),
                         [](const auto &info) {
                             return "phi" + std::to_string(
                                 static_cast<int>(info.param * 100));
                         });

} // namespace
} // namespace vpc
