/**
 * @file
 * Unit tests for the RoW-FCFS arbiter, including its starvation
 * behaviour (the motivating flaw, Section 3.1).
 */

#include <gtest/gtest.h>

#include "arbiter/row_fcfs_arbiter.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(ThreadId t, SeqNum seq, bool write, Addr line = 0)
{
    ArbRequest r;
    r.thread = t;
    r.seq = seq;
    r.isWrite = write;
    r.lineAddr = line;
    return r;
}

TEST(RowFcfsArbiter, ReadsBypassOlderWrites)
{
    RowFcfsArbiter arb(2);
    arb.enqueue(makeReq(0, 1, true, 0x100), 0);
    arb.enqueue(makeReq(1, 2, false, 0x200), 0);
    auto r = arb.select(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->seq, 2u);
}

TEST(RowFcfsArbiter, SameLineWriteBlocksReadBypass)
{
    RowFcfsArbiter arb(1);
    arb.enqueue(makeReq(0, 1, true, 0x100), 0);
    arb.enqueue(makeReq(0, 2, false, 0x100), 0);
    auto r = arb.select(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->seq, 1u); // dependence forces the write first
}

TEST(RowFcfsArbiter, FcfsAmongReads)
{
    RowFcfsArbiter arb(2);
    arb.enqueue(makeReq(1, 1, false), 0);
    arb.enqueue(makeReq(0, 2, false), 0);
    auto r = arb.select(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->seq, 1u);
}

TEST(RowFcfsArbiter, ContinuousReadsStarveWrites)
{
    // The critical design flaw: a never-ending read stream from thread
    // 0 starves thread 1's write indefinitely.
    RowFcfsArbiter arb(2);
    arb.enqueue(makeReq(1, 0, true, 0x999), 0);
    SeqNum seq = 1;
    for (unsigned i = 0; i < 1000; ++i) {
        arb.enqueue(makeReq(0, seq++, false, 0x40 * i), i);
        auto r = arb.select(i);
        ASSERT_TRUE(r);
        EXPECT_EQ(r->thread, 0u) << "write was serviced at round " << i;
    }
    EXPECT_EQ(arb.pendingCount(1), 1u); // still starving
}

TEST(RowFcfsArbiter, WritesDrainWhenNoReads)
{
    RowFcfsArbiter arb(1);
    arb.enqueue(makeReq(0, 1, true), 0);
    arb.enqueue(makeReq(0, 2, true), 0);
    auto a = arb.select(0);
    auto b = arb.select(0);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->seq, 1u);
    EXPECT_EQ(b->seq, 2u);
}

} // namespace
} // namespace vpc
