/**
 * @file
 * Unit tests for the round-robin admission arbiter.
 */

#include <gtest/gtest.h>

#include "arbiter/round_robin_arbiter.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(ThreadId t, SeqNum seq)
{
    ArbRequest r;
    r.thread = t;
    r.seq = seq;
    return r;
}

TEST(RoundRobinArbiter, RotatesAcrossThreads)
{
    RoundRobinArbiter arb(3);
    for (ThreadId t = 0; t < 3; ++t) {
        arb.enqueue(makeReq(t, t * 10), 0);
        arb.enqueue(makeReq(t, t * 10 + 1), 0);
    }
    std::vector<ThreadId> order;
    for (unsigned i = 0; i < 6; ++i) {
        auto r = arb.select(0);
        ASSERT_TRUE(r);
        order.push_back(r->thread);
    }
    EXPECT_EQ(order, (std::vector<ThreadId>{0, 1, 2, 0, 1, 2}));
}

TEST(RoundRobinArbiter, SkipsEmptyThreads)
{
    RoundRobinArbiter arb(3);
    arb.enqueue(makeReq(2, 1), 0);
    auto r = arb.select(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->thread, 2u);
}

TEST(RoundRobinArbiter, FifoWithinThread)
{
    RoundRobinArbiter arb(2);
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(0, 2), 0);
    auto a = arb.select(0);
    auto b = arb.select(0);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->seq, 1u);
    EXPECT_EQ(b->seq, 2u);
}

TEST(RoundRobinArbiter, FairUnderAsymmetricLoad)
{
    // Thread 0 floods; thread 1 trickles.  RR still alternates when
    // both have work.
    RoundRobinArbiter arb(2);
    SeqNum seq = 0;
    unsigned grants1 = 0;
    for (unsigned i = 0; i < 100; ++i) {
        while (arb.pendingCount(0) < 8)
            arb.enqueue(makeReq(0, seq++), i);
        if (arb.pendingCount(1) == 0)
            arb.enqueue(makeReq(1, seq++), i);
        auto r = arb.select(i);
        ASSERT_TRUE(r);
        if (r->thread == 1)
            ++grants1;
    }
    EXPECT_NEAR(grants1, 50u, 2u);
}

} // namespace
} // namespace vpc
