/**
 * @file
 * Regression tests pinning arbiter selection order after the hot-path
 * rework (active-thread mask iteration in VpcArbiter::select, the
 * single-pass Read-over-Write candidate scan in row_scan.hh).  These
 * encode the exact grant sequences of the original implementations —
 * ascending-thread iteration for virtual-finish ties, per-candidate
 * write-prefix dependence checks — so any future change to the mask
 * walk or the Bloom-filtered scan that alters selection shows up here,
 * not in a silently different figure.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "arbiter/row_fcfs_arbiter.hh"
#include "arbiter/row_scan.hh"
#include "arbiter/vpc_arbiter.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(ThreadId t, SeqNum seq, bool write = false, Addr line = 0,
        bool prefetch = false)
{
    ArbRequest r;
    r.id = static_cast<std::uint32_t>(seq);
    r.thread = t;
    r.isWrite = write;
    r.seq = seq;
    r.lineAddr = line;
    r.isPrefetch = prefetch;
    return r;
}

/** Reference two-pass RoW scan (the pre-rework implementation). */
template <class Queue>
std::size_t
referenceRowScan(const Queue &queue)
{
    auto blocked = [&](std::size_t i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (queue[j].isWrite &&
                queue[j].lineAddr == queue[i].lineAddr)
                return true;
        }
        return false;
    };
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const ArbRequest &r = queue[i];
        if (!r.isWrite && !r.isPrefetch && !blocked(i))
            return i;
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const ArbRequest &r = queue[i];
        if (!r.isWrite && !blocked(i))
            return i;
    }
    return 0;
}

TEST(SelectionOrder, VpcTieBreakVisitsThreadsAscending)
{
    // Four equal-share threads enqueue in reverse thread order; all
    // virtual finish times tie, so global arrival seq decides — the
    // mask-based visit must preserve the ascending-thread walk the
    // dense loop used.
    VpcArbiter arb(4, 8, 2, {0.25, 0.25, 0.25, 0.25});
    SeqNum seq = 1;
    for (int t = 3; t >= 0; --t)
        arb.enqueue(makeReq(static_cast<ThreadId>(t), seq++), 0);
    std::vector<ThreadId> grants;
    while (arb.hasPending())
        grants.push_back(arb.select(0)->thread);
    // Arrival order 3,2,1,0 — seq tie-break reproduces it exactly.
    EXPECT_EQ(grants, (std::vector<ThreadId>{3, 2, 1, 0}));
}

TEST(SelectionOrder, VpcEqualFinishEqualSeqImpossibleButStable)
{
    // Equal shares, same-cycle enqueues in ascending thread order:
    // finish ties resolve by seq, so grants replay arrival order.
    VpcArbiter arb(4, 8, 2, {0.25, 0.25, 0.25, 0.25});
    SeqNum seq = 1;
    for (ThreadId t = 0; t < 4; ++t)
        arb.enqueue(makeReq(t, seq++), 0);
    std::vector<ThreadId> grants;
    while (arb.hasPending())
        grants.push_back(arb.select(0)->thread);
    EXPECT_EQ(grants, (std::vector<ThreadId>{0, 1, 2, 3}));
}

TEST(SelectionOrder, VpcSparseActiveThreadsSkipEmptyBuffers)
{
    // Only threads 1 and 3 (of 8) are backlogged; the mask walk must
    // behave as if the dense loop skipped the empty buffers.
    std::vector<double> shares(8, 0.125);
    VpcArbiter arb(8, 8, 2, shares);
    arb.enqueue(makeReq(3, 1), 0);
    arb.enqueue(makeReq(1, 2), 0);
    auto a = arb.select(0);
    auto b = arb.select(8);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->thread, 3u); // earlier seq wins the finish tie
    EXPECT_EQ(b->thread, 1u);
    EXPECT_FALSE(arb.hasPending());
    EXPECT_EQ(arb.select(16), std::nullopt);
}

TEST(SelectionOrder, VpcMaskTracksDrainAndRefill)
{
    VpcArbiter arb(2, 8, 2, {0.5, 0.5});
    arb.enqueue(makeReq(0, 1), 0);
    ASSERT_TRUE(arb.select(0).has_value());
    EXPECT_FALSE(arb.hasPending());
    // Refill the drained thread; it must be visible again.
    arb.enqueue(makeReq(0, 2), 8);
    auto r = arb.select(8);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->seq, 2u);
}

TEST(SelectionOrder, RowScanMatchesReferenceOnDirectedCases)
{
    struct Case
    {
        const char *name;
        std::vector<ArbRequest> queue;
    };
    const std::vector<Case> cases = {
        {"empty-fallback",
         {makeReq(0, 1, true, 0x100)}},
        {"read-bypasses-unrelated-write",
         {makeReq(0, 1, true, 0x100), makeReq(0, 2, false, 0x200)}},
        {"read-blocked-by-same-line-write",
         {makeReq(0, 1, true, 0x100), makeReq(0, 2, false, 0x100)}},
        {"demand-beats-older-prefetch",
         {makeReq(0, 1, false, 0x300, true),
          makeReq(0, 2, false, 0x400)}},
        {"prefetch-when-no-demand",
         {makeReq(0, 1, true, 0x100),
          makeReq(0, 2, false, 0x300, true)}},
        {"blocked-demand-then-unblocked-prefetch",
         {makeReq(0, 1, true, 0x100),
          makeReq(0, 2, false, 0x100),
          makeReq(0, 3, false, 0x500, true)}},
        {"second-demand-unblocked",
         {makeReq(0, 1, true, 0x100),
          makeReq(0, 2, false, 0x100),
          makeReq(0, 3, false, 0x900)}},
    };
    std::vector<Addr> scratch;
    for (const Case &c : cases) {
        std::deque<ArbRequest> q(c.queue.begin(), c.queue.end());
        EXPECT_EQ(rowCandidateIndex(q, scratch), referenceRowScan(q))
            << c.name;
    }
}

TEST(SelectionOrder, RowScanMatchesReferenceOnRandomQueues)
{
    // Exhaustive-ish differential check: pseudo-random queues over a
    // tiny line-address space to force Bloom collisions and real
    // write conflicts.
    std::uint64_t state = 12345;
    auto rnd = [&state](std::uint64_t mod) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return (state >> 33) % mod;
    };
    std::vector<Addr> scratch;
    for (int iter = 0; iter < 2000; ++iter) {
        std::deque<ArbRequest> q;
        std::size_t len = 1 + rnd(12);
        for (std::size_t i = 0; i < len; ++i) {
            bool write = rnd(3) == 0;
            q.push_back(makeReq(0, i + 1, write, 0x40 * rnd(6),
                                !write && rnd(4) == 0));
        }
        ASSERT_EQ(rowCandidateIndex(q, scratch), referenceRowScan(q))
            << "iteration " << iter;
    }
}

TEST(SelectionOrder, RowFcfsGrantSequencePinned)
{
    // End-to-end grant order through the RoW-FCFS arbiter: write,
    // blocked read (same line), unrelated read, prefetch.  Expected
    // service: the unblocked demand read, then the prefetch (the only
    // unblocked read left), then the FIFO-fallback write, then the
    // read it unblocks.
    RowFcfsArbiter arb(1);
    arb.enqueue(makeReq(0, 1, true, 0x100), 0);
    arb.enqueue(makeReq(0, 2, false, 0x100), 0);
    arb.enqueue(makeReq(0, 3, false, 0x200), 0);
    arb.enqueue(makeReq(0, 4, false, 0x300, true), 0);
    std::vector<SeqNum> order;
    while (arb.hasPending())
        order.push_back(arb.select(0)->seq);
    EXPECT_EQ(order, (std::vector<SeqNum>{3, 4, 1, 2}));
}

} // namespace
} // namespace vpc
