/**
 * @file
 * Unit tests for the FCFS arbiter.
 */

#include <gtest/gtest.h>

#include "arbiter/fcfs_arbiter.hh"

namespace vpc
{
namespace
{

ArbRequest
makeReq(ThreadId t, SeqNum seq, bool write = false)
{
    ArbRequest r;
    r.thread = t;
    r.seq = seq;
    r.isWrite = write;
    return r;
}

TEST(FcfsArbiter, GrantsInArrivalOrderAcrossThreads)
{
    FcfsArbiter arb(3);
    arb.enqueue(makeReq(2, 1), 0);
    arb.enqueue(makeReq(0, 2), 0);
    arb.enqueue(makeReq(1, 3), 1);
    for (SeqNum expect = 1; expect <= 3; ++expect) {
        auto r = arb.select(10);
        ASSERT_TRUE(r);
        EXPECT_EQ(r->seq, expect);
    }
    EXPECT_FALSE(arb.hasPending());
}

TEST(FcfsArbiter, IgnoresRequestType)
{
    FcfsArbiter arb(1);
    arb.enqueue(makeReq(0, 1, true), 0);
    arb.enqueue(makeReq(0, 2, false), 0);
    auto r = arb.select(0);
    ASSERT_TRUE(r);
    EXPECT_TRUE(r->isWrite); // no read priority under FCFS
}

TEST(FcfsArbiter, PendingCountsPerThread)
{
    FcfsArbiter arb(2);
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(0, 2), 0);
    arb.enqueue(makeReq(1, 3), 0);
    EXPECT_EQ(arb.pendingCount(), 3u);
    EXPECT_EQ(arb.pendingCount(0), 2u);
    EXPECT_EQ(arb.pendingCount(1), 1u);
    arb.select(0);
    EXPECT_EQ(arb.pendingCount(0), 1u);
}

TEST(FcfsArbiter, GrantStatsAccumulate)
{
    FcfsArbiter arb(2);
    arb.enqueue(makeReq(0, 1), 0);
    arb.enqueue(makeReq(1, 2), 0);
    arb.select(4);
    arb.select(4);
    EXPECT_EQ(arb.grantCount(0), 1u);
    EXPECT_EQ(arb.grantCount(1), 1u);
    EXPECT_DOUBLE_EQ(arb.queueDelay().mean(), 4.0);
}

TEST(FcfsArbiter, EmptySelectReturnsNothing)
{
    FcfsArbiter arb(1);
    EXPECT_EQ(arb.select(0), std::nullopt);
}

} // namespace
} // namespace vpc
