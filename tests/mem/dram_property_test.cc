/**
 * @file
 * Property tests for the DRAM channel timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram_channel.hh"
#include "sim/random.hh"

namespace vpc
{
namespace
{

class DramBankSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DramBankSweep, MoreBanksNeverSlowRandomStreams)
{
    // Bank-level parallelism is monotone: the same random address
    // stream finishes no later with more banks.
    MemConfig base;
    auto run = [&](unsigned banks_per_rank) {
        MemConfig cfg = base;
        cfg.banksPerRank = banks_per_rank;
        DramChannel ch(cfg, 64);
        Rng rng(5, 5);
        Cycle last = 0;
        for (unsigned i = 0; i < 200; ++i) {
            Addr a = 64ull * rng.below(4096);
            last = std::max(last, ch.access(a, false, i * 4));
        }
        return last;
    };
    unsigned banks = GetParam();
    EXPECT_GE(run(banks), run(banks * 2));
}

INSTANTIATE_TEST_SUITE_P(BankCounts, DramBankSweep,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &info) {
                             return "banks" +
                                 std::to_string(info.param);
                         });

TEST(DramChannel, CompletionsMonotoneInIssueTime)
{
    // For a fixed address, issuing later never completes earlier.
    DramChannel ch(MemConfig{}, 64);
    Cycle prev = ch.access(0x0, false, 0);
    for (unsigned i = 1; i < 50; ++i) {
        Cycle done = ch.access(0x0, false, i * 10);
        EXPECT_GE(done, prev);
        prev = done;
    }
}

TEST(DramChannel, SequentialStreamHitsBusBandwidthBound)
{
    // A line-sequential stream rotates across banks; throughput is
    // bounded by the data-bus burst time, not the bank cycle time.
    MemConfig cfg;
    DramChannel ch(cfg, 64);
    Cycle first = ch.access(0x0, false, 0);
    Cycle done = first;
    const unsigned n = 64;
    for (unsigned i = 1; i < n; ++i)
        done = ch.access(64ull * i, false, 0);
    double per_line = static_cast<double>(done - first) / (n - 1);
    EXPECT_NEAR(per_line, static_cast<double>(cfg.tBurst), 2.0);
}

TEST(DramChannel, RandomSingleBankBoundByRowCycle)
{
    // Hammering one bank serializes on ACT->...->PRE (the row cycle).
    MemConfig cfg;
    DramChannel ch(cfg, 64);
    unsigned bank0 = ch.bankIndex(0x0);
    std::vector<Addr> same_bank{0x0};
    for (Addr a = 64; same_bank.size() < 20; a += 64) {
        if (ch.bankIndex(a) == bank0)
            same_bank.push_back(a);
    }
    Cycle prev = ch.access(same_bank[0], false, 0);
    for (unsigned i = 1; i < 20; ++i) {
        Cycle done = ch.access(same_bank[i], false, 0);
        // Same bank each time: at least tRCD+tCL+tRP apart.
        EXPECT_GE(done - prev, cfg.tRcd + cfg.tCl + cfg.tRp);
        prev = done;
    }
}

} // namespace
} // namespace vpc
