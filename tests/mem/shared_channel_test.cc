/**
 * @file
 * Unit tests for the shared-channel memory controller and its
 * fair-queuing scheduler (the companion FQ memory system,
 * Section 2.1).
 */

#include <gtest/gtest.h>

#include "mem/memory_controller.hh"
#include "sim/simulator.hh"

namespace vpc
{
namespace
{

MemConfig
sharedCfg(ArbiterPolicy policy)
{
    MemConfig cfg;
    cfg.sharedChannel = true;
    cfg.schedulerPolicy = policy;
    return cfg;
}

class SharedChannelTest : public ::testing::Test
{
  protected:
    SharedChannelTest()
        : mc(sharedCfg(ArbiterPolicy::Vpc), 2, 64, sim.events(),
             {0.5, 0.5})
    {
        sim.addTicking(&mc);
    }

    Simulator sim;
    MemoryController mc;
};

TEST_F(SharedChannelTest, ReadCompletes)
{
    bool done = false;
    mc.read(0, 0x1000, 0, [&](Addr a, Cycle) {
        EXPECT_EQ(a, 0x1000u);
        done = true;
    });
    sim.run(1000);
    EXPECT_TRUE(done);
    EXPECT_EQ(mc.readCount(0), 1u);
}

TEST_F(SharedChannelTest, WritesComplete)
{
    mc.write(0, 0x0, 0);
    mc.write(1, 0x40, 0);
    sim.run(2000);
    EXPECT_EQ(mc.writeCount(0), 1u);
    EXPECT_EQ(mc.writeCount(1), 1u);
}

TEST_F(SharedChannelTest, BufferLimitsPerThreadStillHold)
{
    MemConfig cfg;
    for (unsigned i = 0; i < cfg.transactionEntries; ++i)
        mc.read(0, 64ull * i, 0, [](Addr, Cycle) {});
    EXPECT_FALSE(mc.canAcceptRead(0));
    EXPECT_TRUE(mc.canAcceptRead(1));
    for (unsigned i = 0; i < cfg.writeEntries; ++i)
        mc.write(1, 0x100000 + 64ull * i, 0);
    EXPECT_FALSE(mc.canAcceptWrite(1));
    sim.run(20'000);
    EXPECT_TRUE(mc.canAcceptRead(0));
    EXPECT_TRUE(mc.canAcceptWrite(1));
}

TEST_F(SharedChannelTest, SchedulerAccessibleSharedOnly)
{
    EXPECT_EQ(mc.scheduler().name(), "VPC");
    Simulator sim2;
    MemoryController priv(MemConfig{}, 2, 64, sim2.events());
    EXPECT_DEATH(priv.scheduler(), "private-channel");
}

TEST(SharedChannelFq, BandwidthSharesRespectedUnderContention)
{
    // Thread 0 gets 25%, thread 1 gets 75%; both flood the channel.
    Simulator sim;
    MemoryController mc(sharedCfg(ArbiterPolicy::Vpc), 2, 64,
                        sim.events(), {0.25, 0.75});
    sim.addTicking(&mc);

    std::uint64_t next[2] = {0, 0};
    auto refill = [&](ThreadId t) {
        while (mc.canAcceptRead(t)) {
            Addr a = (1ull << 32) * t + 64 * next[t]++;
            mc.read(t, a, sim.now(), [](Addr, Cycle) {});
        }
    };
    for (unsigned i = 0; i < 60'000; ++i) {
        refill(0);
        refill(1);
        sim.step();
    }
    double total = static_cast<double>(mc.readCount(0) +
                                       mc.readCount(1));
    EXPECT_NEAR(mc.readCount(1) / total, 0.75, 0.03);
}

TEST(SharedChannelFq, VictimLatencyBoundedUnderFqButNotFcfs)
{
    // A low-rate victim shares the channel with a flooding thread.
    // Under FCFS its requests queue behind the flood; under FQ with a
    // 50% share its latency stays near the unloaded latency.
    auto victim_latency = [](ArbiterPolicy policy) {
        Simulator sim;
        MemoryController mc(sharedCfg(policy), 2, 64, sim.events(),
                            {0.5, 0.5});
        sim.addTicking(&mc);
        std::uint64_t next = 0;
        Cycle submit = 0;
        bool outstanding = false;
        for (unsigned i = 0; i < 100'000; ++i) {
            while (mc.canAcceptRead(1)) {
                mc.read(1, (1ull << 32) + 64 * next++, sim.now(),
                        [](Addr, Cycle) {});
            }
            if (!outstanding && sim.now() % 500 == 0) {
                submit = sim.now();
                outstanding = true;
                mc.read(0, 0x40ull * (i % 64), sim.now(),
                        [&outstanding](Addr, Cycle) {
                            outstanding = false;
                        });
            }
            sim.step();
        }
        return mc.readLatency(0).mean();
    };
    double fcfs = victim_latency(ArbiterPolicy::Fcfs);
    double fq = victim_latency(ArbiterPolicy::Vpc);
    EXPECT_LT(fq, 0.7 * fcfs)
        << "FQ must shield the victim from queueing behind the flood";
}

} // namespace
} // namespace vpc
