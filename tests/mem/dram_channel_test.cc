/**
 * @file
 * Unit tests for the DDR2 channel timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram_channel.hh"

namespace vpc
{
namespace
{

MemConfig
cfg()
{
    return MemConfig{};
}

TEST(DramChannel, ClosedPageReadLatency)
{
    DramChannel ch(cfg(), 64);
    // ACT at 0, CAS at tRCD, data at +tCL, burst tBurst.
    Cycle done = ch.access(0x0, false, 0);
    EXPECT_EQ(done, cfg().tRcd + cfg().tCl + cfg().tBurst);
}

TEST(DramChannel, SameBankAccessesSerializeWithPrecharge)
{
    DramChannel ch(cfg(), 64);
    MemConfig m = cfg();
    // Find another line mapping to the same (XOR-hashed) bank.
    unsigned bank0 = ch.bankIndex(0x0);
    Addr same = 0;
    for (Addr a = 64;; a += 64) {
        if (ch.bankIndex(a) == bank0) {
            same = a;
            break;
        }
    }
    Cycle first = ch.access(0x0, false, 0);
    Cycle second = ch.access(same, false, 0);
    EXPECT_GE(second, first + m.tRp); // waited out precharge + reopen
}

TEST(DramChannel, DifferentBanksOverlap)
{
    DramChannel ch(cfg(), 64);
    // Find a line mapping to a different bank than line 0.
    Addr other = 64;
    while (ch.bankIndex(other) == ch.bankIndex(0x0))
        other += 64;
    Cycle first = ch.access(0x0, false, 0);
    Cycle second = ch.access(other, false, 0);
    // Bank-parallel: only the shared data bus serializes the bursts.
    EXPECT_EQ(second, first + cfg().tBurst);
}

TEST(DramChannel, WriteRecoveryDelaysNextActivation)
{
    DramChannel ch(cfg(), 64);
    MemConfig m = cfg();
    unsigned bank0 = ch.bankIndex(0x0);
    Addr same = 64;
    while (ch.bankIndex(same) != bank0)
        same += 64;
    Cycle w = ch.access(0x0, true, 0);
    Cycle r = ch.access(same, false, 0);
    // After a write the bank also waits out tWr before precharging.
    EXPECT_GE(r, w + m.tWr + m.tRp + m.tRcd + m.tCl);
}

TEST(DramChannel, LateArrivalStartsAtNow)
{
    DramChannel ch(cfg(), 64);
    Cycle done = ch.access(0x0, false, 1000);
    EXPECT_EQ(done, 1000 + cfg().tRcd + cfg().tCl + cfg().tBurst);
}

TEST(DramChannel, CountsAccesses)
{
    DramChannel ch(cfg(), 64);
    ch.access(0, false, 0);
    ch.access(64, true, 0);
    EXPECT_EQ(ch.accessCount(), 2u);
    EXPECT_GT(ch.busUtil().busyCycles(), 0u);
}

} // namespace
} // namespace vpc
