/**
 * @file
 * Unit tests for the per-thread-channel memory controller.
 */

#include <gtest/gtest.h>

#include "mem/memory_controller.hh"
#include "sim/simulator.hh"

namespace vpc
{
namespace
{

class MemoryControllerTest : public ::testing::Test
{
  protected:
    MemoryControllerTest() : mc(MemConfig{}, 2, 64, sim.events())
    {
        sim.addTicking(&mc);
    }

    Simulator sim;
    MemoryController mc;
};

TEST_F(MemoryControllerTest, ReadCompletesWithCallback)
{
    bool done = false;
    Cycle done_at = 0;
    mc.read(0, 0x1000, 0, [&](Addr a, Cycle c) {
        EXPECT_EQ(a, 0x1000u);
        done = true;
        done_at = c;
    });
    sim.run(500);
    EXPECT_TRUE(done);
    MemConfig m;
    // ctrl + tRCD + tCL + burst + ctrl.
    EXPECT_EQ(done_at, 2 * m.ctrlLatency + m.tRcd + m.tCl + m.tBurst);
}

TEST_F(MemoryControllerTest, TransactionBufferLimitsOutstanding)
{
    MemConfig m;
    for (unsigned i = 0; i < m.transactionEntries; ++i) {
        ASSERT_TRUE(mc.canAcceptRead(0));
        mc.read(0, 0x1000 + 64 * i, 0, [](Addr, Cycle) {});
    }
    EXPECT_FALSE(mc.canAcceptRead(0));
    // The other thread's private channel is unaffected.
    EXPECT_TRUE(mc.canAcceptRead(1));
    sim.run(5000);
    EXPECT_TRUE(mc.canAcceptRead(0));
    EXPECT_EQ(mc.readCount(0), m.transactionEntries);
}

TEST_F(MemoryControllerTest, WriteBufferLimit)
{
    MemConfig m;
    for (unsigned i = 0; i < m.writeEntries; ++i) {
        ASSERT_TRUE(mc.canAcceptWrite(0));
        mc.write(0, 64 * i, 0);
    }
    EXPECT_FALSE(mc.canAcceptWrite(0));
    sim.run(2000);
    EXPECT_TRUE(mc.canAcceptWrite(0));
    EXPECT_EQ(mc.writeCount(0), m.writeEntries);
}

TEST_F(MemoryControllerTest, ReadsPrioritizedOverWrites)
{
    mc.write(0, 0x0, 0);
    mc.write(0, 0x40, 0);
    Cycle read_done = 0;
    mc.read(0, 0x2000, 0, [&](Addr, Cycle c) { read_done = c; });
    sim.run(2000);
    // The read is serviced first even though the writes were queued
    // earlier (it goes to a different bank so only queue order could
    // delay it).
    MemConfig m;
    EXPECT_LE(read_done,
              2 * m.ctrlLatency + m.tRcd + m.tCl + m.tBurst + 2);
}

TEST_F(MemoryControllerTest, ThreadsHavePrivateChannels)
{
    // Saturate thread 0's channel; thread 1's read latency must be
    // unaffected (private channels isolate memory interference).
    for (unsigned i = 0; i < 8; ++i)
        mc.read(0, 64ull * i, 0, [](Addr, Cycle) {});
    Cycle t1_done = 0;
    mc.read(1, 0x0, 0, [&](Addr, Cycle c) { t1_done = c; });
    sim.run(3000);
    MemConfig m;
    EXPECT_LE(t1_done,
              2 * m.ctrlLatency + m.tRcd + m.tCl + m.tBurst + 2);
}

TEST_F(MemoryControllerTest, LatencyStatsRecorded)
{
    mc.read(0, 0x0, 0, [](Addr, Cycle) {});
    sim.run(500);
    EXPECT_EQ(mc.readLatency(0).count(), 1u);
    EXPECT_GT(mc.readLatency(0).mean(), 0.0);
}

} // namespace
} // namespace vpc
