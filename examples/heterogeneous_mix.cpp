/**
 * @file
 * Heterogeneous consolidation demo: four different SPEC stand-ins
 * share the L2 of a 4-core CMP.  Compares the FCFS baseline against
 * VPC with equal shares and reports per-thread normalized IPC plus
 * the paper's two aggregate metrics (harmonic mean and minimum of
 * normalized IPCs) -- the server-consolidation scenario of Section 1.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/spec2000.hh"

int
main()
{
    using namespace vpc;

    constexpr Cycle kWarmup = 80'000;
    constexpr Cycle kMeasure = 200'000;
    const std::vector<std::string> mix = {"art", "mcf", "gzip",
                                          "sixtrack"};

    auto run = [&](ArbiterPolicy policy) {
        SystemConfig cfg = makeBaselineConfig(4, policy);
        std::vector<std::unique_ptr<Workload>> wl;
        for (unsigned t = 0; t < 4; ++t)
            wl.push_back(makeSpec2000(mix[t], (1ull << 40) * t,
                                      t + 1));
        CmpSystem sys(cfg, std::move(wl));
        return sys.runAndMeasure(kWarmup, kMeasure);
    };

    // Per-thread targets: a private machine with 1/4 of everything.
    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    std::vector<double> target;
    for (unsigned t = 0; t < 4; ++t) {
        auto wl = makeSpec2000(mix[t], (1ull << 40) * t, t + 1);
        target.push_back(targetIpc(base, *wl, 0.25, 0.25,
                                   RunLengths{kWarmup, kMeasure}));
    }

    IntervalStats fcfs = run(ArbiterPolicy::Fcfs);
    IntervalStats vpc = run(ArbiterPolicy::Vpc);

    std::printf("Heterogeneous mix: %s + %s + %s + %s\n",
                mix[0].c_str(), mix[1].c_str(), mix[2].c_str(),
                mix[3].c_str());
    std::printf("%-10s %10s %10s %10s\n", "thread", "target",
                "FCFS/tgt", "VPC/tgt");
    std::vector<double> nf, nv;
    for (unsigned t = 0; t < 4; ++t) {
        double tgt = target[t] > 0 ? target[t] : 1e-9;
        nf.push_back(fcfs.ipc[t] / tgt);
        nv.push_back(vpc.ipc[t] / tgt);
        std::printf("%-10s %10.3f %10.3f %10.3f\n", mix[t].c_str(),
                    target[t], nf[t], nv[t]);
    }
    std::printf("harmonic mean of normalized IPCs: FCFS %.3f, VPC "
                "%.3f\n", harmonicMean(nf), harmonicMean(nv));
    std::printf("minimum normalized IPC:           FCFS %.3f, VPC "
                "%.3f\n", minimum(nf), minimum(nv));
    return 0;
}
