/**
 * @file
 * QoS guarantee demo: a soft real-time thread (modeled on the paper's
 * multimedia motivation, Section 1 / Figure 1b) is allocated 50% of
 * the cache bandwidth and capacity; three batch threads get 10% each,
 * leaving 20% unallocated.  The example verifies the VPM promise: the
 * real-time thread performs at least as well as a standalone private
 * machine provisioned with its allocation, no matter what the batch
 * threads do.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/microbench.hh"
#include "workload/spec2000.hh"

int
main()
{
    using namespace vpc;

    constexpr Cycle kWarmup = 80'000;
    constexpr Cycle kMeasure = 200'000;

    // The "multimedia" thread: steady L2-heavy reads (art's profile).
    auto make_subject = [] { return makeSpec2000("art", 0, 1); };

    // Figure 1b allocation: 50% + 3 x 10%, 20% left unallocated.
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    cfg.shares = {QosShare{0.5, 0.5}, QosShare{0.1, 0.1},
                  QosShare{0.1, 0.1}, QosShare{0.1, 0.1}};
    cfg.validate();

    // Worst-case company: three store floods.
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(make_subject());
    for (unsigned t = 1; t < 4; ++t)
        wl.push_back(std::make_unique<StoresBenchmark>((1ull << 40) *
                                                       t));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats stats = sys.runAndMeasure(kWarmup, kMeasure);

    // The promise to verify: at least private-machine performance for
    // a machine with phi=0.5 of each bandwidth and beta=0.5 of the
    // ways.
    auto subject = make_subject();
    double target = targetIpc(cfg, *subject, 0.5, 0.5,
                              RunLengths{kWarmup, kMeasure});

    std::printf("QoS guarantee (Figure 1b allocation, hostile "
                "background)\n");
    std::printf("  real-time thread IPC:              %.3f\n",
                stats.ipc[0]);
    std::printf("  equivalent private machine target: %.3f\n",
                target);
    std::printf("  guarantee %s (%.1f%% of target)\n",
                stats.ipc[0] >= 0.95 * target ? "MET" : "VIOLATED",
                stats.ipc[0] / target * 100.0);
    for (unsigned t = 1; t < 4; ++t) {
        std::printf("  background store thread %u IPC:    %.3f\n", t,
                    stats.ipc[t]);
    }
    return stats.ipc[0] >= 0.95 * target ? 0 : 1;
}
