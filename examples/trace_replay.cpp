/**
 * @file
 * Trace capture and replay: the paper's trace-driven methodology as a
 * user workflow.
 *
 * 1. Run a synthetic benchmark once, recording its op stream to a
 *    trace file (TraceRecorder).
 * 2. Replay the trace through an identical machine (TraceWorkload)
 *    and verify the run is cycle-identical -- traces make experiments
 *    exactly reproducible and shareable without the generator.
 * 3. Dump the full hierarchical statistics report for the replay.
 *
 * Bring-your-own traces use the same one-op-per-line format:
 *   L <hex addr> [d]   |   S <hex addr>   |   C [n]
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "system/cmp_system.hh"
#include "system/stats_report.hh"
#include "workload/spec2000.hh"
#include "workload/trace.hh"

int
main()
{
    using namespace vpc;

    const std::string trace_path = "/tmp/vpc_example_trace.txt";
    constexpr Cycle kRun = 100'000;

    SystemConfig cfg;
    cfg.numProcessors = 1;
    cfg.arbiterPolicy = ArbiterPolicy::RowFcfs;

    // Pass 1: record while simulating.
    std::uint64_t recorded_instrs = 0;
    {
        std::vector<std::unique_ptr<Workload>> wl;
        wl.push_back(std::make_unique<TraceRecorder>(
            makeSpec2000("twolf", 0, 42), trace_path,
            2'000'000));
        CmpSystem sys(cfg, std::move(wl));
        sys.run(kRun);
        recorded_instrs = sys.cpu(0).instrsRetired();
        std::printf("pass 1 (generator, recording): %llu instructions"
                    " in %llu cycles\n",
                    static_cast<unsigned long long>(recorded_instrs),
                    static_cast<unsigned long long>(kRun));
    }

    // Pass 2: replay the trace on a fresh machine.
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<TraceWorkload>(trace_path));
    CmpSystem sys(cfg, std::move(wl));
    sys.run(kRun);
    std::uint64_t replayed = sys.cpu(0).instrsRetired();
    std::printf("pass 2 (trace replay):          %llu instructions "
                "in %llu cycles\n",
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(kRun));
    std::printf("replay is %s\n",
                replayed == recorded_instrs
                    ? "cycle-identical (deterministic)"
                    : "DIVERGENT (bug!)");

    std::printf("\nfull statistics report for the replay:\n");
    dumpStats(sys, std::cout, sys.now());
    std::remove(trace_path.c_str());
    return replayed == recorded_instrs ? 0 : 1;
}
