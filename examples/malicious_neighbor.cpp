/**
 * @file
 * Denial-of-service demo: the paper motivates VPC with workloads that
 * "intentionally inundate the shared cache with requests".  A victim
 * thread running the Loads benchmark shares the L2 with three
 * malicious store floods.  The example sweeps the arbiter policies
 * and shows that only VPC bounds the damage (RoW additionally shows
 * the reverse pathology: the victim's loads starve the attackers
 * completely, which is just as broken in a shared machine).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/microbench.hh"

int
main()
{
    using namespace vpc;

    constexpr Cycle kWarmup = 50'000;
    constexpr Cycle kMeasure = 200'000;

    auto run = [&](ArbiterPolicy policy) {
        SystemConfig cfg = makeBaselineConfig(4, policy);
        std::vector<std::unique_ptr<Workload>> wl;
        wl.push_back(std::make_unique<LoadsBenchmark>(0));
        for (unsigned t = 1; t < 4; ++t) {
            wl.push_back(std::make_unique<StoresBenchmark>(
                (1ull << 40) * t));
        }
        CmpSystem sys(cfg, std::move(wl));
        return sys.runAndMeasure(kWarmup, kMeasure);
    };

    // Victim alone on the machine, for reference.
    SystemConfig solo = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    LoadsBenchmark loads(0);
    double alone = targetIpc(solo, loads, 1.0, 1.0,
                             RunLengths{kWarmup, kMeasure});
    double fair_target = targetIpc(solo, loads, 0.25, 0.25,
                                   RunLengths{kWarmup, kMeasure});

    std::printf("Malicious neighbors: victim (Loads) vs 3 store "
                "floods\n");
    std::printf("victim alone: IPC %.3f; fair (1/4 machine) target: "
                "%.3f\n\n", alone, fair_target);
    std::printf("%-12s %12s %14s %16s\n", "arbiter", "victim IPC",
                "vs alone", "attacker IPC");
    for (ArbiterPolicy policy : {ArbiterPolicy::RowFcfs,
                                 ArbiterPolicy::Fcfs,
                                 ArbiterPolicy::Vpc}) {
        IntervalStats s = run(policy);
        const char *name =
            policy == ArbiterPolicy::RowFcfs ? "RoW-FCFS"
            : policy == ArbiterPolicy::Fcfs ? "FCFS" : "VPC";
        std::printf("%-12s %12.3f %13.1f%% %16.3f\n", name, s.ipc[0],
                    s.ipc[0] / alone * 100.0, s.ipc[1]);
    }
    std::printf("\nVPC keeps the victim at (or above) its fair "
                "1/4-machine target while\nthe attackers still "
                "receive their own shares.\n");
    return 0;
}
