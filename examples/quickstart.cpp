/**
 * @file
 * Quickstart: build a 2-processor CMP with Virtual Private Caches,
 * give one thread 75% of the shared L2 bandwidth, run the Table 2
 * microbenchmarks, and print per-thread performance.
 *
 * This is the smallest complete use of the public API:
 *   1. describe the machine with SystemConfig (Table 1 defaults);
 *   2. pick the arbiter policy and per-thread QoS shares;
 *   3. attach one Workload per processor;
 *   4. run and read IntervalStats.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "system/cmp_system.hh"
#include "workload/microbench.hh"

int
main()
{
    using namespace vpc;

    // 1. Machine description: 2 processors, everything else is the
    //    paper's Table 1 configuration.
    SystemConfig cfg;
    cfg.numProcessors = 2;

    // 2. QoS policy: VPC arbiters on the tag array, data array and
    //    data bus; thread 0 is guaranteed 75% of each bandwidth and
    //    half the cache ways, thread 1 gets the remaining 25%.
    cfg.arbiterPolicy = ArbiterPolicy::Vpc;
    cfg.capacityPolicy = CapacityPolicy::Vpc;
    cfg.shares = {QosShare{0.75, 0.5}, QosShare{0.25, 0.5}};

    // 3. One workload per processor: thread 0 streams loads through
    //    the L2, thread 1 floods it with stores (Table 2).
    std::vector<std::unique_ptr<Workload>> workloads;
    workloads.push_back(std::make_unique<LoadsBenchmark>(0));
    workloads.push_back(std::make_unique<StoresBenchmark>(1ull << 32));

    // 4. Build, warm up, measure.
    CmpSystem system(cfg, std::move(workloads));
    IntervalStats stats = system.runAndMeasure(/*warmup=*/50'000,
                                               /*measure=*/200'000);

    std::printf("Virtual Private Caches quickstart (2-core CMP)\n");
    std::printf("  thread 0 (Loads,  phi=0.75): IPC %.3f\n",
                stats.ipc[0]);
    std::printf("  thread 1 (Stores, phi=0.25): IPC %.3f\n",
                stats.ipc[1]);
    std::printf("  shared L2 data-array utilization: %.1f%%\n",
                stats.dataUtil * 100.0);
    std::printf("\nDespite the store flood, thread 0 keeps its "
                "allocated bandwidth;\nswap the policy to "
                "ArbiterPolicy::RowFcfs to watch thread 1 starve.\n");
    return 0;
}
