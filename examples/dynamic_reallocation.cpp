/**
 * @file
 * Dynamic reallocation demo: system software reprograms the VPC
 * control registers while threads run.
 *
 * The paper's VPM framework exists precisely so software can manage
 * microarchitecture resources: "VPMs provide system software with a
 * useful abstraction for maintaining control over shared
 * microarchitecture resources."  This example runs two phases:
 *
 *   phase 1: thread 0 is the priority task (phi = 0.75);
 *   phase 2: software flips the allocation (thread 1 gets 0.75)
 *            by writing the VPC control registers mid-run.
 *
 * The measured IPCs track the allocation in each phase -- no drain,
 * flush, or restart is needed, because the fair-queuing state adapts
 * within one virtual service time and capacity redistributes through
 * normal replacements.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cache/vpc_controller.hh"
#include "system/cmp_system.hh"
#include "workload/microbench.hh"

int
main()
{
    using namespace vpc;

    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.arbiterPolicy = ArbiterPolicy::Vpc;
    // Initial allocation: thread 0 priority.
    cfg.shares = {QosShare{0.75, 0.5}, QosShare{0.25, 0.5}};

    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<LoadsBenchmark>(1ull << 32));
    CmpSystem system(cfg, std::move(wl));

    // The software-visible control registers.
    VpcController ctrl(system.l2(), 2);

    auto report = [&system](const char *phase,
                            const SystemSnapshot &a,
                            const SystemSnapshot &b) {
        IntervalStats s = CmpSystem::interval(a, b);
        std::printf("%s  thread0 IPC %.3f   thread1 IPC %.3f\n",
                    phase, s.ipc[0], s.ipc[1]);
    };

    system.run(50'000); // warm up
    SystemSnapshot p1_start = system.snapshot();
    system.run(150'000);
    SystemSnapshot p1_end = system.snapshot();
    report("phase 1 (phi = .75/.25):", p1_start, p1_end);

    // Software flips the priority.  Shrink the big allocation first
    // so the controller never sees an over-allocated intermediate
    // state.
    bool ok = ctrl.writeRegister(
                  0, VpcConfigRegister::uniform(0.25, 0.5)) &&
              ctrl.writeRegister(
                  1, VpcConfigRegister::uniform(0.75, 0.5));
    std::printf("register rewrite %s\n", ok ? "accepted" : "REJECTED");

    system.run(10'000); // let the pipeline adapt
    SystemSnapshot p2_start = system.snapshot();
    system.run(150'000);
    SystemSnapshot p2_end = system.snapshot();
    report("phase 2 (phi = .25/.75):", p2_start, p2_end);

    std::printf("\nThe IPC ratio tracks the programmed allocation in "
                "both phases;\nreconfiguration cost is one virtual "
                "service time, not a cache flush.\n");
    return ok ? 0 : 1;
}
